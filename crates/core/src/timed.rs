//! Monitor for timed implication constraints `T = (P ⇒ Q, t)` (paper
//! Def. 5).
//!
//! The fragments of `P` and `Q` are concatenated and monitored as a *cyclic*
//! chain: the end of `Q` is the reset point, and the first event of the next
//! `P` wraps the recognizer around for the next episode (the pattern is
//! "implicitly of the repeated kind").
//!
//! Timing follows the paper's SystemC monitor: the variable `start` latches
//! the simulation time at which `P` is recognized, `stop` the time at which
//! recognition of `Q` finishes, and `stop − start ≤ t` is checked. Because a
//! range `n[u,v]` with `u < v` has several valid end points, the monitor
//! uses the *most permissive* decomposition (the property holds if **some**
//! decomposition meets the budget):
//!
//! * the end of `P` is the latest event consumed by `P`'s last fragment
//!   before `Q` begins — while `P`'s last fragment can still extend, the
//!   deadline is *movable* and its passage is not yet a violation;
//! * the end of `Q` is the **earliest** instant at which every range of
//!   `Q`'s last fragment has reached its minimum count.
//!
//! A deadline violation is reported as soon as it is unavoidable: when an
//! event, an [`Monitor::advance_time`] notification, or the end of
//! observation passes a deadline that can no longer move.

use lomon_trace::{NameSet, SimTime, TimedEvent};

use crate::antecedent::{witness_record, witness_snapshot};
use crate::ast::TimedImplication;
use crate::compose::{LooseOrderingRecognizer, OrderingStep};
use crate::recognizer::RangeState;
use crate::verdict::{Monitor, Obligation, Verdict, Violation, ViolationKind};
use crate::witness::{FlightRecorder, Witness, WitnessStep};

/// The direct (Drct) monitor for a timed implication constraint.
///
/// # Example
///
/// ```
/// use lomon_core::ast::{Fragment, LooseOrdering, Range, TimedImplication};
/// use lomon_core::timed::TimedImplicationMonitor;
/// use lomon_core::verdict::{run_to_end, Monitor, Verdict};
/// use lomon_trace::{SimTime, Trace, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let start = voc.input("start");
/// let irq = voc.output("set_irq");
/// let prop = TimedImplication::new(
///     LooseOrdering::new(vec![Fragment::singleton(Range::once(start))]),
///     LooseOrdering::new(vec![Fragment::singleton(Range::once(irq))]),
///     SimTime::from_ns(100),
/// );
/// let mut monitor = TimedImplicationMonitor::new(prop);
/// let trace = Trace::from_pairs([
///     (SimTime::from_ns(10), start),
///     (SimTime::from_ns(60), irq), // 50ns after start: within budget
/// ]);
/// assert_eq!(run_to_end(&mut monitor, &trace), Verdict::PresumablySatisfied);
/// ```
#[derive(Debug, Clone)]
pub struct TimedImplicationMonitor {
    property: TimedImplication,
    recognizer: LooseOrderingRecognizer,
    /// Number of fragments belonging to `P` (indices `0..premise_len`).
    premise_len: usize,
    alphabet: NameSet,
    verdict: Verdict,
    violation: Option<Violation>,
    /// Time of the last event consumed in the current episode.
    last_consumed: Option<SimTime>,
    /// Frozen end of `P` once `Q` has begun (the paper's `start`).
    episode_start: Option<SimTime>,
    /// Earliest completion of `Q` (the paper's `stop`), once reached.
    response_done_at: Option<SimTime>,
    episodes: u64,
    /// Episodes whose response `Q` completed within the budget.
    responses_in_time: u64,
    diagnostics: bool,
    last_expected: NameSet,
    ops: u64,
    /// Explain mode: the bounded ring of contributing steps (see
    /// [`crate::witness`]); `None` keeps observation untouched.
    recorder: Option<Box<FlightRecorder>>,
    /// Attributing mode: record full cell/transition attribution instead
    /// of the live raw `(time, event)` chain. Only set on the fresh clones
    /// [`Monitor::witness`] replays a chain through.
    attribute: bool,
}

impl TimedImplicationMonitor {
    /// Build and activate the monitor.
    ///
    /// The property must be well-formed (see [`crate::wf`]); monitors built
    /// through [`crate::monitor::build_monitor`] are validated first.
    pub fn new(property: TimedImplication) -> Self {
        let fragments = property.all_fragments();
        let mut recognizer = LooseOrderingRecognizer::new_cyclic(&fragments);
        recognizer.start();
        let alphabet = property.alpha();
        let premise_len = property.premise.fragments.len();
        let mut monitor = TimedImplicationMonitor {
            property,
            recognizer,
            premise_len,
            alphabet,
            verdict: Verdict::PresumablySatisfied,
            violation: None,
            last_consumed: None,
            episode_start: None,
            response_done_at: None,
            episodes: 0,
            responses_in_time: 0,
            diagnostics: true,
            last_expected: NameSet::new(),
            ops: 0,
            recorder: None,
            attribute: false,
        };
        monitor.snapshot_expected();
        monitor
    }

    /// Disable the per-event expected-set snapshot (see
    /// [`crate::antecedent::AntecedentMonitor::without_diagnostics`]).
    pub fn without_diagnostics(mut self) -> Self {
        self.diagnostics = false;
        self.last_expected = NameSet::new();
        self
    }

    /// The monitored property.
    pub fn property(&self) -> &TimedImplication {
        &self.property
    }

    /// Completed `P ⇒ Q` episodes so far (counted when the next episode
    /// begins).
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Episodes whose response `Q` completed within the deadline budget:
    /// the monitor's notion of a *satisfied* (non-vacuous) episode.
    pub fn satisfied_episodes(&self) -> u64 {
        self.responses_in_time
    }

    fn snapshot_expected(&mut self) {
        if self.diagnostics {
            self.last_expected = self.recognizer.expected();
        }
    }

    /// The latest possible end of the current `P` observation, if `P` is
    /// currently complete: frozen once `Q` has begun, movable before.
    fn premise_end(&self) -> Option<SimTime> {
        if let Some(frozen) = self.episode_start {
            return Some(frozen);
        }
        if self.recognizer.active_index() + 1 == self.premise_len
            && self.recognizer.active_fragment().can_complete()
        {
            self.last_consumed
        } else {
            None
        }
    }

    /// The obligation's deadline, movable or not (`None` when no complete
    /// `P` is pending a response).
    fn open_deadline(&self) -> Option<SimTime> {
        if self.response_done_at.is_some() {
            return None;
        }
        self.premise_end()?.checked_add(self.property.bound)
    }

    /// The deadline, only once it can no longer move: `Q` has begun, or
    /// `P`'s last fragment is complete and cannot extend.
    fn hard_deadline(&self) -> Option<SimTime> {
        if self.response_done_at.is_some() {
            return None;
        }
        if let Some(frozen) = self.episode_start {
            return frozen.checked_add(self.property.bound);
        }
        if self.recognizer.active_index() + 1 == self.premise_len
            && self.recognizer.active_fragment().can_complete()
            && !self.recognizer.active_fragment().can_extend()
        {
            return self.last_consumed?.checked_add(self.property.bound);
        }
        None
    }

    /// The deadline cell whose obligation was still open when the budget
    /// expired — the same selection rule as the compiled backend's
    /// `pick_obligation`: once inside `Q`, the first range of the active
    /// fragment below its minimum; when the active fragment is already
    /// completable, the next fragment's first range; while still in `P`,
    /// the first range of `Q`'s first fragment.
    fn pick_obligation(&self) -> Obligation {
        let ob = |r: &crate::recognizer::RangeRecognizer| Obligation {
            name: r.range().name,
            min: r.range().min,
            max: r.range().max,
        };
        let frags = self.recognizer.fragments();
        let active = self.recognizer.active_index();
        if active >= self.premise_len {
            let frag = &frags[active];
            if !frag.can_complete() {
                for r in frag.ranges() {
                    let satisfied = matches!(r.state(), RangeState::Done)
                        || (matches!(r.state(), RangeState::Counting)
                            && r.count() >= r.range().min);
                    if !satisfied {
                        return ob(r);
                    }
                }
            } else if active + 1 < frags.len() {
                return ob(&frags[active + 1].ranges()[0]);
            }
            ob(&frag.ranges()[0])
        } else {
            ob(&frags[self.premise_len].ranges()[0])
        }
    }

    /// Witness hook for an in-alphabet event that found the deadline
    /// already expired before stepping the recognizer (see the compiled
    /// backend's `record_stall`). Live explain mode records the bare
    /// `(time, event)` pair; attribute mode attributes the stall.
    fn record_stall(&mut self, event: TimedEvent) {
        if !self.attribute {
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.record_event(event);
            }
            return;
        }
        let active = self.recognizer.active_index();
        let frags = self.recognizer.fragments();
        let base: usize = frags[..active].iter().map(|f| f.ranges().len()).sum();
        let state = frags[active].ranges()[0].state().code();
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record(WitnessStep {
                time: event.time,
                event: event.name,
                cell: base as u32,
                from: state,
                to: state,
            });
        }
    }

    fn miss_deadline(
        &mut self,
        kind: ViolationKind,
        deadline: SimTime,
        event: Option<TimedEvent>,
        now: SimTime,
    ) {
        self.verdict = Verdict::Violated;
        self.violation = Some(Violation {
            kind,
            event,
            time: now,
            expected: std::mem::take(&mut self.last_expected),
            detail: format!(
                "episode {}: Q unfinished at {now}, deadline was {deadline} \
                 (P ended {}, budget {})",
                self.episodes + 1,
                deadline.saturating_sub(self.property.bound),
                self.property.bound,
            ),
            obligation: Some(self.pick_obligation()),
        });
    }

    fn current_positive_verdict(&self) -> Verdict {
        if self.open_deadline().is_some() {
            Verdict::Pending
        } else {
            Verdict::PresumablySatisfied
        }
    }
}

impl Monitor for TimedImplicationMonitor {
    fn observe(&mut self, event: TimedEvent) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        self.ops += 1; // alphabet projection test
        if !self.alphabet.contains(event.name) {
            // Even an unrelated event advances the clock.
            return self.advance_time(event.time);
        }
        // An event beyond a hard deadline makes the miss unavoidable —
        // whatever the event is, Q cannot have finished in time.
        self.ops += 1; // deadline compare
        if let Some(deadline) = self.hard_deadline() {
            if event.time > deadline {
                if self.recorder.is_some() {
                    self.record_stall(event);
                }
                self.miss_deadline(
                    ViolationKind::DeadlineMiss,
                    deadline,
                    Some(event),
                    event.time,
                );
                return self.verdict;
            }
        }
        let snap = if self.attribute {
            witness_snapshot(&mut self.recorder, &self.recognizer)
        } else {
            None
        };
        let step = self.recognizer.step(event.name);
        if let Some(snap) = snap {
            witness_record(&mut self.recorder, &self.recognizer, event, snap);
        } else if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record_event(event);
        }
        match step {
            OrderingStep::Progress => {
                self.last_consumed = Some(event.time);
            }
            OrderingStep::Handover { to, .. } => {
                self.ops += 2; // boundary compares
                if to == self.premise_len {
                    // Q begins on this event: freeze the end of P at the
                    // last event P actually consumed.
                    self.episode_start = self.last_consumed;
                    debug_assert!(
                        self.episode_start.is_some(),
                        "handover into Q with no P event consumed"
                    );
                } else if to == 0 {
                    // This event starts the next episode's P.
                    self.episodes += 1;
                    self.episode_start = None;
                    self.response_done_at = None;
                }
                self.last_consumed = Some(event.time);
            }
            OrderingStep::Complete => unreachable!("cyclic recognizers never complete"),
            OrderingStep::Error {
                kind,
                fragment,
                range,
            } => {
                self.verdict = Verdict::Violated;
                self.violation = Some(Violation {
                    kind,
                    event: Some(event),
                    time: event.time,
                    expected: std::mem::take(&mut self.last_expected),
                    detail: format!(
                        "timed-implication episode {}: fragment {}/{} ({}), range {} rejected",
                        self.episodes + 1,
                        fragment + 1,
                        self.recognizer.fragments().len(),
                        if fragment < self.premise_len {
                            "in P"
                        } else {
                            "in Q"
                        },
                        range + 1,
                    ),
                    obligation: None,
                });
                return self.verdict;
            }
        }
        // Earliest completion of Q: the first instant the last fragment's
        // minima are all met ends the episode's obligation.
        self.ops += 2; // index compare + completion test
        let last = self.recognizer.fragments().len() - 1;
        if self.recognizer.active_index() == last
            && self.episode_start.is_some()
            && self.response_done_at.is_none()
            && self.recognizer.active_fragment().can_complete()
        {
            self.response_done_at = Some(event.time);
            let start = self.episode_start.expect("episode started");
            self.ops += 1; // budget compare
            if event.time.saturating_sub(start) > self.property.bound {
                let deadline = start
                    .checked_add(self.property.bound)
                    .unwrap_or(SimTime::MAX);
                self.miss_deadline(
                    ViolationKind::DeadlineMiss,
                    deadline,
                    Some(event),
                    event.time,
                );
                return self.verdict;
            }
            self.responses_in_time += 1;
        }
        self.verdict = self.current_positive_verdict();
        self.snapshot_expected();
        self.verdict
    }

    fn advance_time(&mut self, now: SimTime) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        self.ops += 1; // deadline compare
        if let Some(deadline) = self.hard_deadline() {
            if now > deadline {
                self.miss_deadline(ViolationKind::DeadlineMiss, deadline, None, now);
            }
        }
        self.verdict
    }

    fn finish(&mut self, end_time: SimTime) -> Verdict {
        if self.verdict.is_final() {
            return self.verdict;
        }
        // At end of observation no extension can move the deadline any
        // more: a complete-but-unanswered P counts with its latest end.
        if let Some(deadline) = self.open_deadline() {
            if end_time > deadline {
                self.miss_deadline(
                    ViolationKind::DeadlineExpiredAtEnd,
                    deadline,
                    None,
                    end_time,
                );
            }
            // Otherwise the obligation is still open within budget:
            // Pending (inconclusive at end of observation).
        }
        self.verdict
    }

    fn verdict(&self) -> Verdict {
        self.verdict
    }

    fn alphabet(&self) -> &NameSet {
        &self.alphabet
    }

    fn expected(&self) -> NameSet {
        self.recognizer.expected()
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    fn deadline(&self) -> Option<SimTime> {
        if self.verdict.is_final() {
            None
        } else {
            self.hard_deadline()
        }
    }

    fn reset(&mut self) {
        self.recognizer.restart();
        self.verdict = Verdict::PresumablySatisfied;
        self.violation = None;
        self.last_consumed = None;
        self.episode_start = None;
        self.response_done_at = None;
        self.episodes = 0;
        self.responses_in_time = 0;
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.clear();
        }
        self.snapshot_expected();
    }

    fn ops(&self) -> u64 {
        self.ops + self.recognizer.ops()
    }

    fn state_bits(&self) -> u64 {
        // Recognizers + the paper's two sc_time variables (start, stop) +
        // the movable premise end + verdict and episode flags.
        self.recognizer.state_bits() + 3 * 64 + 2 + 3
    }

    fn set_explain(&mut self, capacity: usize) {
        self.recorder = if capacity == 0 {
            None
        } else {
            Some(Box::new(FlightRecorder::new(capacity)))
        };
    }

    fn witness(&self) -> Option<Witness> {
        let raw = self.recorder.as_deref().map(FlightRecorder::snapshot)?;
        if self.attribute {
            return Some(raw);
        }
        Some(crate::witness::reattribute(self, raw, |m, capacity| {
            m.attribute = true;
            m.set_explain(capacity);
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Fragment, LooseOrdering, Range};
    use crate::verdict::run_to_end;
    use lomon_trace::{Name, Trace, Vocabulary};

    /// Paper Example 3: `(start ⇒ read_img[100,60000] < set_irq, T)`,
    /// scaled down to `read_img[2,4]` for unit-test traces.
    struct Ex3 {
        start: Name,
        read: Name,
        irq: Name,
        monitor: TimedImplicationMonitor,
    }

    fn example3(bound_ns: u64) -> Ex3 {
        let mut voc = Vocabulary::new();
        let start = voc.input("start");
        let read = voc.output("read_img");
        let irq = voc.output("set_irq");
        let prop = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(start))]),
            LooseOrdering::new(vec![
                Fragment::singleton(Range::new(read, 2, 4)),
                Fragment::singleton(Range::once(irq)),
            ]),
            SimTime::from_ns(bound_ns),
        );
        Ex3 {
            start,
            read,
            irq,
            monitor: TimedImplicationMonitor::new(prop),
        }
    }

    fn at(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn nominal_episode_within_budget() {
        let mut e = example3(100);
        let trace = Trace::from_pairs([
            (at(10), e.start),
            (at(20), e.read),
            (at(30), e.read),
            (at(40), e.read),
            (at(50), e.irq),
        ]);
        assert_eq!(
            run_to_end(&mut e.monitor, &trace),
            Verdict::PresumablySatisfied
        );
    }

    #[test]
    fn late_response_is_deadline_miss() {
        let mut e = example3(100);
        let trace = Trace::from_pairs([
            (at(10), e.start),
            (at(20), e.read),
            (at(30), e.read),
            (at(200), e.irq), // 190ns after start > 100ns
        ]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Violated);
        assert_eq!(
            e.monitor.violation().unwrap().kind,
            ViolationKind::DeadlineMiss
        );
    }

    #[test]
    fn budget_runs_from_end_of_premise() {
        // start at 10ns, budget 100ns → deadline 110ns; irq at 105ns is ok
        // even though the reads straddle most of the budget.
        let mut e = example3(100);
        let trace = Trace::from_pairs([
            (at(10), e.start),
            (at(50), e.read),
            (at(100), e.read),
            (at(105), e.irq),
        ]);
        assert_eq!(
            run_to_end(&mut e.monitor, &trace),
            Verdict::PresumablySatisfied
        );
    }

    #[test]
    fn missing_response_detected_at_end_of_trace() {
        let mut e = example3(100);
        let mut trace = Trace::from_pairs([(at(10), e.start), (at(20), e.read), (at(30), e.read)]);
        trace.set_end_time(at(500));
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Violated);
        assert_eq!(
            e.monitor.violation().unwrap().kind,
            ViolationKind::DeadlineExpiredAtEnd
        );
    }

    #[test]
    fn unfinished_episode_within_budget_is_pending() {
        let mut e = example3(100);
        let trace = Trace::from_pairs([(at(10), e.start), (at(20), e.read), (at(30), e.read)]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Pending);
    }

    #[test]
    fn deadline_opens_when_premise_completes_and_cannot_extend() {
        let mut e = example3(100);
        assert_eq!(e.monitor.deadline(), None);
        e.monitor.observe(TimedEvent::new(e.start, at(10)));
        // start[1,1] cannot extend: the deadline is hard immediately.
        assert_eq!(e.monitor.deadline(), Some(at(110)));
        assert_eq!(e.monitor.verdict(), Verdict::Pending);
    }

    #[test]
    fn deadline_closes_when_response_earliest_completes() {
        let mut e = example3(100);
        for (t, n) in [(10, e.start), (20, e.read), (30, e.read)] {
            e.monitor.observe(TimedEvent::new(n, at(t)));
        }
        assert_eq!(e.monitor.deadline(), Some(at(110)));
        e.monitor.observe(TimedEvent::new(e.read, at(40)));
        assert_eq!(e.monitor.deadline(), Some(at(110)));
        e.monitor.observe(TimedEvent::new(e.irq, at(60)));
        assert_eq!(e.monitor.deadline(), None);
        assert_eq!(e.monitor.verdict(), Verdict::PresumablySatisfied);
    }

    #[test]
    fn advance_time_detects_timeout_online() {
        let mut e = example3(100);
        e.monitor.observe(TimedEvent::new(e.start, at(10)));
        assert_eq!(e.monitor.advance_time(at(100)), Verdict::Pending);
        assert_eq!(e.monitor.advance_time(at(111)), Verdict::Violated);
        assert_eq!(
            e.monitor.violation().unwrap().kind,
            ViolationKind::DeadlineMiss
        );
    }

    #[test]
    fn out_of_alphabet_event_advances_clock() {
        let mut voc = Vocabulary::new();
        let other = voc.input("other");
        let mut e = example3(100);
        e.monitor.observe(TimedEvent::new(e.start, at(10)));
        // An unrelated event at 300ns reveals the deadline miss.
        assert_eq!(
            e.monitor.observe(TimedEvent::new(other, at(300))),
            Verdict::Violated
        );
    }

    #[test]
    fn repeated_episodes_each_get_their_own_budget() {
        let mut e = example3(100);
        let trace = Trace::from_pairs([
            (at(10), e.start),
            (at(20), e.read),
            (at(30), e.read),
            (at(40), e.irq),
            // second episode, new budget from 1000ns
            (at(1000), e.start),
            (at(1020), e.read),
            (at(1040), e.read),
            (at(1090), e.irq),
        ]);
        assert_eq!(
            run_to_end(&mut e.monitor, &trace),
            Verdict::PresumablySatisfied
        );
        assert_eq!(e.monitor.episodes(), 1); // wrap counted on 2nd start
    }

    #[test]
    fn second_episode_can_violate() {
        let mut e = example3(100);
        let trace = Trace::from_pairs([
            (at(10), e.start),
            (at(20), e.read),
            (at(30), e.read),
            (at(40), e.irq),
            (at(1000), e.start),
            (at(1020), e.read),
            (at(1030), e.read),
            (at(2000), e.irq),
        ]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Violated);
    }

    #[test]
    fn response_without_premise_errs() {
        let mut e = example3(100);
        let trace = Trace::from_pairs([(at(10), e.read)]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Violated);
        // In the cyclic chain read_img is the Ac of P's fragment, arriving
        // while nothing of P has been seen: premature stop.
        assert_eq!(
            e.monitor.violation().unwrap().kind,
            ViolationKind::PrematureStop
        );
        // An irq without premise is a later-than-next name instead.
        let mut e = example3(100);
        let trace = Trace::from_pairs([(at(10), e.irq)]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Violated);
        assert_eq!(
            e.monitor.violation().unwrap().kind,
            ViolationKind::AfterName
        );
    }

    #[test]
    fn too_few_reads_then_irq_errs() {
        let mut e = example3(100);
        let trace = Trace::from_pairs([(at(10), e.start), (at(20), e.read), (at(30), e.irq)]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Violated);
        assert_eq!(
            e.monitor.violation().unwrap().kind,
            ViolationKind::PrematureStop
        );
    }

    #[test]
    fn too_many_reads_errs() {
        let mut e = example3(1000);
        let trace = Trace::from_pairs([
            (at(10), e.start),
            (at(20), e.read),
            (at(21), e.read),
            (at(22), e.read),
            (at(23), e.read),
            (at(24), e.read),
        ]);
        assert_eq!(run_to_end(&mut e.monitor, &trace), Verdict::Violated);
        assert_eq!(e.monitor.violation().unwrap().kind, ViolationKind::TooMany);
    }

    #[test]
    fn premise_end_uses_latest_extension() {
        // P = start[1,2]: two starts; the budget runs from the second.
        let mut voc = Vocabulary::new();
        let start = voc.input("start");
        let irq = voc.output("set_irq");
        let prop = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::new(start, 1, 2))]),
            LooseOrdering::new(vec![Fragment::singleton(Range::once(irq))]),
            SimTime::from_ns(100),
        );
        let mut monitor = TimedImplicationMonitor::new(prop);
        let trace = Trace::from_pairs([
            (at(10), start),
            (at(80), start), // P's end moves to 80ns → deadline 180ns
            (at(150), irq),
        ]);
        assert_eq!(
            run_to_end(&mut monitor, &trace),
            Verdict::PresumablySatisfied
        );
    }

    #[test]
    fn movable_deadline_does_not_fire_online() {
        // While P can still extend, passing the movable deadline is not a
        // violation: a later P event may re-base it.
        let mut voc = Vocabulary::new();
        let start = voc.input("start");
        let irq = voc.output("set_irq");
        let prop = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::new(start, 1, 2))]),
            LooseOrdering::new(vec![Fragment::singleton(Range::once(irq))]),
            SimTime::from_ns(100),
        );
        let mut monitor = TimedImplicationMonitor::new(prop);
        monitor.observe(TimedEvent::new(start, at(10)));
        assert_eq!(monitor.deadline(), None, "deadline still movable");
        assert_eq!(monitor.advance_time(at(500)), Verdict::Pending);
        // The second start re-bases the budget; irq meets it.
        monitor.observe(TimedEvent::new(start, at(600)));
        assert_eq!(monitor.deadline(), Some(at(700)));
        assert_eq!(
            monitor.observe(TimedEvent::new(irq, at(650))),
            Verdict::PresumablySatisfied
        );
    }

    #[test]
    fn movable_deadline_still_counts_at_end_of_trace() {
        let mut voc = Vocabulary::new();
        let start = voc.input("start");
        let irq = voc.output("set_irq");
        let prop = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::new(start, 1, 2))]),
            LooseOrdering::new(vec![Fragment::singleton(Range::once(irq))]),
            SimTime::from_ns(100),
        );
        let mut monitor = TimedImplicationMonitor::new(prop);
        let mut trace = Trace::from_pairs([(at(10), start)]);
        trace.set_end_time(at(1000));
        assert_eq!(run_to_end(&mut monitor, &trace), Verdict::Violated);
        assert_eq!(
            monitor.violation().unwrap().kind,
            ViolationKind::DeadlineExpiredAtEnd
        );
    }

    #[test]
    fn response_end_uses_earliest_completion() {
        // Q = read[2,4] (single fragment): earliest completion at the 2nd
        // read; later reads may exceed the deadline without violating.
        let mut voc = Vocabulary::new();
        let start = voc.input("start");
        let read = voc.output("read_img");
        let prop = TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(start))]),
            LooseOrdering::new(vec![Fragment::singleton(Range::new(read, 2, 4))]),
            SimTime::from_ns(100),
        );
        let mut monitor = TimedImplicationMonitor::new(prop);
        let trace = Trace::from_pairs([
            (at(10), start),
            (at(20), read),
            (at(30), read),  // earliest completion at 30ns — within budget
            (at(500), read), // extension beyond the deadline: still fine
        ]);
        assert_eq!(
            run_to_end(&mut monitor, &trace),
            Verdict::PresumablySatisfied
        );
    }

    #[test]
    fn reset_clears_episode_state() {
        let mut e = example3(100);
        e.monitor.observe(TimedEvent::new(e.start, at(10)));
        e.monitor.reset();
        assert_eq!(e.monitor.deadline(), None);
        assert_eq!(e.monitor.verdict(), Verdict::PresumablySatisfied);
        assert_eq!(e.monitor.episodes(), 0);
    }

    #[test]
    fn instrumentation_reports() {
        let mut e = example3(100);
        let bits = e.monitor.state_bits();
        assert!(bits > 3 * 64);
        e.monitor.observe(TimedEvent::new(e.start, at(10)));
        assert!(e.monitor.ops() > 0);
        assert_eq!(e.monitor.state_bits(), bits);
    }

    #[test]
    fn violation_detail_mentions_part() {
        let mut e = example3(100);
        run_to_end(&mut e.monitor, &Trace::from_pairs([(at(10), e.read)]));
        let v = e.monitor.violation().unwrap();
        assert!(v.detail.contains("in P"), "detail: {}", v.detail);
    }

    #[test]
    fn multi_fragment_premise_arms_late() {
        // P = a < b, Q = irq: the budget runs from b, not a.
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.input("b");
        let irq = voc.output("set_irq");
        let prop = TimedImplication::new(
            LooseOrdering::new(vec![
                Fragment::singleton(Range::once(a)),
                Fragment::singleton(Range::once(b)),
            ]),
            LooseOrdering::new(vec![Fragment::singleton(Range::once(irq))]),
            SimTime::from_ns(100),
        );
        let mut monitor = TimedImplicationMonitor::new(prop);
        monitor.observe(TimedEvent::new(a, at(10)));
        assert_eq!(monitor.deadline(), None, "P incomplete");
        monitor.observe(TimedEvent::new(b, at(500)));
        assert_eq!(monitor.deadline(), Some(at(600)));
        assert_eq!(
            monitor.observe(TimedEvent::new(irq, at(590))),
            Verdict::PresumablySatisfied
        );
    }
}
