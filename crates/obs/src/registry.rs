//! The [`Registry`]: a named, labelled collection of metrics with
//! Prometheus text-format and NDJSON exposition.
//!
//! Registration takes a short mutex hold and returns an `Arc` to the
//! metric; the hot path then records through the `Arc` without ever
//! touching the registry again. Rendering walks the families in
//! registration order, so exposition output is deterministic for a fixed
//! registration sequence.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::metric::{bucket_upper, Counter, Gauge, Histogram, BUCKETS};

/// A `(key, value)` label pair attached to one metric series.
pub type Label = (&'static str, String);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Value {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    series: Vec<(Vec<Label>, Value)>,
}

/// A collection of named metrics, shared across threads behind an `Arc`.
///
/// Metric families are keyed by name; series within a family by their
/// label set. Registering the same `(name, labels)` twice returns the
/// existing metric, so independent subsystems can share a series safely.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Family>> {
        // A poisoned mutex only means another thread panicked mid-scrape or
        // mid-registration; the data (Arc pointers) is still sound, and the
        // exposition server must never propagate a panic.
        self.families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn register<M>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: Vec<Label>,
        wrap: impl Fn(Arc<M>) -> Value,
        unwrap: impl Fn(&Value) -> Option<Arc<M>>,
    ) -> Arc<M>
    where
        M: Default,
    {
        let mut families = self.lock();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                family.kind == kind,
                "metric {name} registered twice with different kinds \
                 ({} vs {})",
                family.kind.as_str(),
                kind.as_str()
            );
            if let Some((_, value)) = family.series.iter().find(|(l, _)| *l == labels) {
                return unwrap(value).expect("kind checked above");
            }
            let metric = Arc::new(M::default());
            family.series.push((labels, wrap(Arc::clone(&metric))));
            return metric;
        }
        let metric = Arc::new(M::default());
        families.push(Family {
            name,
            help,
            kind,
            series: vec![(labels, wrap(Arc::clone(&metric)))],
        });
        metric
    }

    /// Register (or fetch) an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, Vec::new())
    }

    /// Register (or fetch) a counter with labels.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
    ) -> Arc<Counter> {
        self.register(
            name,
            help,
            Kind::Counter,
            labels,
            Value::Counter,
            |v| match v {
                Value::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Register (or fetch) an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, Vec::new())
    }

    /// Register (or fetch) a gauge with labels.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
    ) -> Arc<Gauge> {
        self.register(name, help, Kind::Gauge, labels, Value::Gauge, |v| match v {
            Value::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Register (or fetch) an unlabelled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, Vec::new())
    }

    /// Register (or fetch) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<Label>,
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            Kind::Histogram,
            labels,
            Value::Histogram,
            |v| match v {
                Value::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Render the whole registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per family, one sample
    /// line per series, histograms expanded into cumulative `_bucket`
    /// series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.lock();
        let mut out = String::new();
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for (labels, value) in &family.series {
                match value {
                    Value::Counter(c) => {
                        let _ =
                            writeln!(out, "{}{} {}", family.name, render_labels(labels), c.get());
                    }
                    Value::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(labels),
                            render_f64(g.get())
                        );
                    }
                    Value::Histogram(h) => {
                        render_histogram(&mut out, family.name, labels, h);
                    }
                }
            }
        }
        out
    }

    /// Render the whole registry as NDJSON: one JSON object per family per
    /// line, `{"name":…,"kind":…,"series":[{"labels":{…},"value":…},…]}`.
    /// Histogram series carry `count`, `sum`, and the non-empty buckets as
    /// `[upper, cumulative_count]` pairs.
    pub fn render_ndjson(&self) -> String {
        let families = self.lock();
        let mut out = String::new();
        for family in families.iter() {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"series\":[",
                family.name,
                family.kind.as_str()
            );
            for (i, (labels, value)) in family.series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (j, (key, val)) in labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", json_escape(key), json_escape(val));
                }
                out.push_str("},");
                match value {
                    Value::Counter(c) => {
                        let _ = write!(out, "\"value\":{}", c.get());
                    }
                    Value::Gauge(g) => {
                        let _ = write!(out, "\"value\":{}", render_f64(g.get()));
                    }
                    Value::Histogram(h) => {
                        let _ = write!(
                            out,
                            "\"count\":{},\"sum\":{},\"buckets\":[",
                            h.count(),
                            h.sum()
                        );
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        let mut first = true;
                        for (index, n) in counts.iter().enumerate() {
                            if *n == 0 {
                                continue;
                            }
                            cumulative += n;
                            if !first {
                                out.push(',');
                            }
                            first = false;
                            let _ = write!(out, "[{},{}]", bucket_upper(index), cumulative);
                        }
                        out.push(']');
                    }
                }
                out.push('}');
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// Render `{k="v",…}` with Prometheus label-value escaping, or the empty
/// string when there are no labels.
fn render_labels(labels: &[Label]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", prom_escape(value));
    }
    out.push('}');
    out
}

/// Escape a Prometheus label value: backslash, double-quote, newline.
fn prom_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Minimal JSON string escaping (the obs crate is dependency-free by
/// design, so it cannot borrow lomon-trace's writer). Shared with the
/// tracer's Chrome trace-event writer.
pub(crate) fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

/// Render an `f64` the way Prometheus expects: integral values without a
/// trailing `.0`, non-finite values as `NaN`/`+Inf`/`-Inf`.
fn render_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_owned()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{value}")
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[Label], h: &Histogram) {
    let counts = h.bucket_counts();
    // Buckets past the last non-empty one add no information; render up to
    // it, then the mandatory +Inf bucket.
    let last = counts.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (index, n) in counts.iter().enumerate().take(last.min(BUCKETS)) {
        cumulative += n;
        let mut with_le: Vec<Label> = labels.to_vec();
        with_le.push(("le", bucket_upper(index).to_string()));
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", render_labels(&with_le));
    }
    let mut with_le: Vec<Label> = labels.to_vec();
    with_le.push(("le", "+Inf".to_owned()));
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        render_labels(&with_le),
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels), h.sum());
    let _ = writeln!(out, "{name}_count{} {}", render_labels(labels), h.count());
}
