//! Per-connection stream handling: the fault-isolation boundary.
//!
//! One OS thread owns one connection end to end. Everything that can go
//! wrong on the wire — torn frames, garbage bytes, time travel, oversized
//! lines, half-open sockets, clients that stop reading — is handled here,
//! on this thread, against this connection's own session; sibling streams
//! never observe any of it. The handler's last line of defense is a
//! `catch_unwind` around the whole drive loop: a panic (which would be a
//! bug) is counted, the poisoned session is discarded instead of parked,
//! and the process keeps serving.

use std::io::{self, BufWriter, Read as _, Write};
use std::net::{Shutdown, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::Instant;

use lomon_core::verdict::Verdict;
use lomon_engine::Session;
use lomon_trace::ndjson::{parse_ndjson_line_ref, StreamLineRef};
use lomon_trace::{json_escape, Frame, FrameDecoder, SimTime, TimedEvent, Vocabulary};

use crate::program::Program;
use crate::server::Shared;

/// Read-buffer size; also the most unprocessed input we hold outside the
/// frame decoder. Reading no further ahead than we can process is the
/// backpressure mechanism: a fire-hose client is throttled by TCP flow
/// control, not buffered into our heap.
const READ_CHUNK: usize = 8 * 1024;

/// Why a stream was cut short. Each variant is one isolation class with
/// its own counter; the reason string goes verbatim into the error frame.
enum Fault {
    /// The frame failed the stream grammar.
    Parse(String),
    /// The frame parsed but violated the protocol (time travel, size cap,
    /// invalid UTF-8).
    Protocol(String),
}

/// Serve one accepted connection to completion, then recycle its session
/// into the pool. Never panics: a panicking drive loop is contained,
/// counted, and only costs its own (discarded) session.
pub(crate) fn handle_connection(shared: &Shared, stream: &TcpStream) {
    let program = shared.current_program();
    let generation = program.generation;
    // Recycle a parked session of this generation when one is available;
    // `resume` re-checks engine identity, so a mis-keyed state degrades to
    // a fresh session instead of a wrong-rulebook stream.
    let mut session = shared
        .pool
        .acquire(generation)
        .and_then(|state| program.engine.resume(state).ok())
        .unwrap_or_else(|| program.session(shared.config.backend));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        run(shared, &program, &mut session, stream);
    }));
    let _ = stream.shutdown(Shutdown::Both);
    match outcome {
        Ok(()) => {
            // The session is rewound *before* parking so the acquire path
            // stays allocation-free and can never observe a dirty stream.
            session.reset();
            shared.pool.release(generation, session.into_state());
        }
        Err(_) => {
            shared.metrics.panics.inc();
        }
    }
}

/// The drive loop plus write-side error accounting.
fn run<'e>(shared: &Shared, program: &'e Program, session: &mut Session<'e>, stream: &TcpStream) {
    if let Err(error) = drive(shared, program, session, stream) {
        // Write-side failures only reach here (read-side ones are handled
        // in the loop): the client stopped reading our verdicts in time,
        // or vanished under a write.
        match error.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                shared.metrics.slow_closes.inc();
            }
            _ => {
                shared.metrics.disconnects.inc();
            }
        }
    }
}

/// The per-connection protocol loop. Returns `Err` only for write-side
/// I/O failures; every read-side condition (EOF, reset, timeout) and
/// every client fault is handled — and counted — in here.
#[allow(clippy::too_many_lines)]
fn drive<'e>(
    shared: &Shared,
    program: &'e Program,
    session: &mut Session<'e>,
    stream: &TcpStream,
) -> io::Result<()> {
    let config = &shared.config;
    let metrics = &shared.metrics;
    // The read timeout doubles as the liveness tick: every `read_tick` the
    // loop gets control to notice drain/stop requests and idle streams.
    stream.set_read_timeout(Some(config.read_tick))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    writeln!(
        writer,
        "{{\"type\": \"ready\", \"generation\": {}, \"properties\": {}, \"backend\": \"{}\"}}",
        program.generation,
        program.engine.len(),
        config.backend.label(),
    )?;
    writer.flush()?;

    let mut decoder = FrameDecoder::new(config.max_frame_bytes);
    let mut buf = vec![0u8; READ_CHUNK];
    let mut last_activity = Instant::now();
    // Per-stream state: a connection carries a sequence of streams, each
    // finalized by an `{"end": …}` frame (or the final one by clean EOF).
    let mut stream_idx: u64 = 0;
    let mut line_no: u64 = 0;
    let mut last_time = SimTime::ZERO;
    let mut dirty = false;
    let mut violations: u64 = 0;
    let mut scratch: Vec<u32> = Vec::new();

    loop {
        if shared.stop.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            // Drain: flush this stream's final report, announce, leave.
            writeln!(writer, "{{\"type\": \"draining\"}}")?;
            if dirty {
                finalize_stream(
                    session,
                    program,
                    &mut writer,
                    stream_idx,
                    last_time,
                    violations,
                    &mut scratch,
                )?;
                metrics.drained.inc();
                metrics.streams.inc();
                metrics.events.add(session.stats().events);
            }
            writer.flush()?;
            return Ok(());
        }
        let n = match reader.read(&mut buf) {
            Ok(0) => {
                // Clean FIN. A pending partial frame means the peer died
                // mid-frame: a torn final frame, counted as a disconnect
                // (the error frame is best-effort — the peer may be gone).
                if decoder.partial_len() > 0 {
                    metrics.disconnects.inc();
                    let _ = write_error(
                        &mut writer,
                        stream_idx,
                        line_no,
                        "connection closed mid-frame",
                    );
                    let _ = writer.flush();
                } else if dirty {
                    finalize_stream(
                        session,
                        program,
                        &mut writer,
                        stream_idx,
                        last_time,
                        violations,
                        &mut scratch,
                    )?;
                    metrics.streams.inc();
                    metrics.events.add(session.stats().events);
                    writer.flush()?;
                }
                return Ok(());
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_activity.elapsed() >= config.idle_timeout {
                    // Idle reap: the stream stopped talking; free its slot.
                    metrics.idle_reaps.inc();
                    let _ = write_error(&mut writer, stream_idx, line_no, "idle timeout");
                    let _ = writer.flush();
                    return Ok(());
                }
                continue;
            }
            Err(_) => {
                // Abrupt reset. Nothing to report to a vanished peer.
                metrics.disconnects.inc();
                return Ok(());
            }
        };
        last_activity = Instant::now();
        decoder.push(&buf[..n]);
        while let Some(frame) = decoder.next_frame() {
            line_no += 1;
            let step = match frame {
                Frame::Oversized { seen } => Err(Fault::Protocol(format!(
                    "frame exceeds {} bytes ({seen}+ seen); dropped",
                    config.max_frame_bytes
                ))),
                Frame::Line(line) => process_line(
                    line,
                    program,
                    session,
                    &mut writer,
                    stream_idx,
                    &mut last_time,
                    &mut violations,
                    &mut scratch,
                ),
            };
            match step {
                Ok(Step::Quiet) => {}
                Ok(Step::Ingested) => dirty = true,
                Ok(Step::EndOfStream) => {
                    // `{"end": …}` finalized the stream (inside
                    // `process_line`); rewind for the next one on this
                    // connection — the recycling hot path.
                    metrics.streams.inc();
                    metrics.events.add(session.stats().events);
                    session.reset();
                    stream_idx += 1;
                    line_no = 0;
                    last_time = SimTime::ZERO;
                    dirty = false;
                    violations = 0;
                }
                Err(fault) => {
                    // Per-stream fault isolation: push the error verdict,
                    // bump the right counter, close this connection. The
                    // session stays healthy and is recycled by the caller.
                    let reason = match &fault {
                        Fault::Parse(r) => {
                            metrics.parse_errors.inc();
                            r
                        }
                        Fault::Protocol(r) => {
                            metrics.protocol_errors.inc();
                            r
                        }
                    };
                    write_error(&mut writer, stream_idx, line_no, reason)?;
                    writer.flush()?;
                    return Ok(());
                }
            }
        }
        writer.flush()?;
    }
}

/// What one well-formed frame did to the stream.
enum Step {
    /// Blank line — nothing happened.
    Quiet,
    /// An event or time advance was ingested.
    Ingested,
    /// The stream was finalized by an `end` frame.
    EndOfStream,
}

/// Decode and apply one frame.
#[allow(clippy::too_many_arguments)]
fn process_line<'e>(
    line: &[u8],
    program: &'e Program,
    session: &mut Session<'e>,
    writer: &mut impl Write,
    stream_idx: u64,
    last_time: &mut SimTime,
    violations: &mut u64,
    scratch: &mut Vec<u32>,
) -> Result<Step, Fault> {
    let text = std::str::from_utf8(line)
        .map_err(|_| Fault::Protocol("frame is not valid UTF-8".to_owned()))?;
    // The zero-copy parser: the event name borrows from the frame (owned
    // only when a JSON escape forced a copy), and the vocabulary probe is
    // the read-side byte-keyed table — no `String` per frame on the
    // steady-state path.
    match parse_ndjson_line_ref(text) {
        Ok(None) => Ok(Step::Quiet),
        Ok(Some(StreamLineRef::Event {
            time,
            direction: _,
            name,
        })) => {
            if time < *last_time {
                return Err(Fault::Protocol(format!(
                    "timestamp {time} precedes previous event at {}",
                    *last_time
                )));
            }
            *last_time = time;
            // Unknown names are *not* interned — the vocabulary is shared
            // and immutable, so a client inventing names cannot grow
            // server memory. The timestamp still advances the deadline
            // sweep, exactly as a subscribed-to-nothing event would.
            match program.voc.lookup_bytes(name.as_bytes()) {
                Some(known) => session.ingest(TimedEvent::new(known, time)),
                None => session.advance_time(time),
            }
            *violations += emit_new_verdicts(session, &program.voc, writer, stream_idx, scratch)
                .map_err(|e| io_fault(&e))?;
            Ok(Step::Ingested)
        }
        Ok(Some(StreamLineRef::End(time))) => {
            if time < *last_time {
                return Err(Fault::Protocol(format!(
                    "end time {time} precedes last event at {}",
                    *last_time
                )));
            }
            finalize_stream(
                session,
                program,
                writer,
                stream_idx,
                time,
                *violations,
                scratch,
            )
            .map_err(|e| io_fault(&e))?;
            Ok(Step::EndOfStream)
        }
        Err(message) => Err(Fault::Parse(message)),
    }
}

/// Write-side errors inside frame processing surface as a protocol-level
/// fault so the drive loop unwinds through one path; the caller's flush
/// will hit the same condition and classify it properly.
fn io_fault(error: &io::Error) -> Fault {
    Fault::Protocol(format!("write failed: {error}"))
}

/// Close the stream at `end_time` and emit its final report: the verdicts
/// that finalized on close, one `"final": false` line per still-open
/// property, and the summary frame with the canonical stats object.
fn finalize_stream<'e>(
    session: &mut Session<'e>,
    program: &'e Program,
    writer: &mut impl Write,
    stream_idx: u64,
    end_time: SimTime,
    violations: u64,
    scratch: &mut Vec<u32>,
) -> io::Result<()> {
    session.close(end_time);
    let violations =
        violations + emit_new_verdicts(session, &program.voc, writer, stream_idx, scratch)?;
    for id in 0..program.engine.len() {
        let verdict = session.verdict(id);
        if !verdict.is_final() {
            writeln!(
                writer,
                "{{\"type\": \"verdict\", \"stream\": {stream_idx}, \"property\": \"{}\", \
                 \"index\": {id}, \"verdict\": \"{verdict}\", \"final\": false}}",
                json_escape(program.engine.property_display(id)),
            )?;
        }
    }
    let mut stats = *session.stats();
    stats.properties = program.engine.len() as u64;
    stats.retired = (program.engine.len() - session.active_len()) as u64;
    writeln!(
        writer,
        "{{\"type\": \"summary\", \"stream\": {stream_idx}, \"ok\": {}, \"events\": {}, \
         \"violations\": {violations}, \"stats\": {}}}",
        violations == 0,
        stats.events,
        stats.render_json_object(session.backend().label(), violations),
    )
}

/// Stream the verdicts that went final since the last call, watch-style,
/// returning how many were violations.
fn emit_new_verdicts(
    session: &mut Session<'_>,
    voc: &Vocabulary,
    writer: &mut impl Write,
    stream_idx: u64,
    scratch: &mut Vec<u32>,
) -> io::Result<u64> {
    session.drain_newly_final_into(scratch);
    let mut violated = 0u64;
    for &id in scratch.iter() {
        let id = id as usize;
        let verdict = session.verdict(id);
        violated += u64::from(verdict == Verdict::Violated);
        let diagnostic = session
            .violation(id)
            .map(|v| format!(", \"diagnostic\": \"{}\"", json_escape(&v.display(voc))))
            .unwrap_or_default();
        writeln!(
            writer,
            "{{\"type\": \"verdict\", \"stream\": {stream_idx}, \"property\": \"{}\", \
             \"index\": {id}, \"verdict\": \"{verdict}\"{diagnostic}}}",
            json_escape(session.engine().property_display(id)),
        )?;
    }
    Ok(violated)
}

/// The error frame a faulted stream finalizes with.
fn write_error(
    writer: &mut impl Write,
    stream_idx: u64,
    line_no: u64,
    reason: &str,
) -> io::Result<()> {
    writeln!(
        writer,
        "{{\"type\": \"error\", \"stream\": {stream_idx}, \"line\": {line_no}, \
         \"reason\": \"{}\"}}",
        json_escape(reason),
    )
}
