//! SMC campaign scaling: wall-clock time vs worker count on the platform
//! workload, plus the determinism invariant that makes the parallelism
//! safe to use — the report must be bit-identical for every `--jobs`.
//!
//! Run with `cargo run -p lomon-bench --bin smc_scaling --release`.
//! `--check` runs a reduced matrix and exits non-zero unless
//!
//! * every worker count produces the same [`CampaignReport`], and
//! * 4 workers achieve at least a 3× speedup over 1 worker — evaluated
//!   only when the machine actually has ≥ 4 cores (on smaller machines the
//!   determinism gate still runs and the speedup gate reports `skipped`).
//!
//! Episodes are full platform simulations (`captures` episodes of the
//! face-recognition loop each), sized so per-episode work dominates the
//! campaign's scheduling overhead.

use std::process::ExitCode;
use std::time::Instant;

use lomon_smc::{Campaign, CampaignConfig, CampaignReport, ScenarioModel};
use lomon_tlm::scenario::ScenarioConfig;

/// A heavier-than-default scenario: more recognition episodes per
/// simulation, so one campaign episode costs ~100 µs of real work.
fn bench_model(fault_probability: f64) -> ScenarioModel {
    let config = ScenarioConfig {
        captures: 12,
        ..ScenarioConfig::nominal(0)
    };
    ScenarioModel::new(config).with_fault_probability(fault_probability)
}

struct Measurement {
    report: CampaignReport,
    millis: f64,
}

fn run(model: &ScenarioModel, episodes: u64, jobs: usize, reps: u32) -> Measurement {
    let campaign = Campaign::new(
        model,
        CampaignConfig::estimate(42, episodes).with_jobs(jobs),
    )
    .expect("bench properties compile");
    let mut best = f64::INFINITY;
    let mut report = None;
    // Best-of-`reps` wall clock: robust against scheduler noise on shared
    // CI runners.
    for _ in 0..reps {
        let started = Instant::now();
        let this = campaign.run();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        if let Some(previous) = &report {
            assert_eq!(&this, previous, "a re-run changed the report");
        }
        report = Some(this);
    }
    Measurement {
        report: report.expect("at least one rep"),
        millis: best,
    }
}

fn main() -> ExitCode {
    let check_mode = std::env::args().any(|a| a == "--check");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (episodes, reps, job_counts): (u64, u32, Vec<usize>) = if check_mode {
        (1024, 3, vec![1, 2, 4])
    } else {
        let mut jobs = vec![1, 2, 4, 8, 16];
        jobs.retain(|&j| j <= 2 * cores);
        (1024, 3, jobs)
    };

    println!(
        "smc campaign scaling — {episodes} platform episodes, fault probability 0.3, \
         {cores} cores"
    );
    println!(
        "{:>5} {:>10} {:>9} {:>13} {:>12}",
        "jobs", "wall ms", "speedup", "episodes/s", "same report"
    );

    let model = bench_model(0.3);
    let baseline = run(&model, episodes, 1, reps);
    let mut speedup_at_4 = None;
    let mut deterministic = true;
    for &jobs in &job_counts {
        let m = if jobs == 1 {
            Measurement {
                report: baseline.report.clone(),
                millis: baseline.millis,
            }
        } else {
            run(&model, episodes, jobs, reps)
        };
        let same = m.report == baseline.report;
        deterministic &= same;
        let speedup = baseline.millis / m.millis;
        if jobs == 4 {
            speedup_at_4 = Some(speedup);
        }
        println!(
            "{:>5} {:>10.2} {:>8.2}x {:>13.0} {:>12}",
            jobs,
            m.millis,
            speedup,
            episodes as f64 / (m.millis / 1e3),
            if same { "yes" } else { "NO" },
        );
    }

    // The verdicts themselves, for the record.
    println!();
    print!("{}", baseline.report.render());

    if !check_mode {
        println!();
        println!("Expected shape: wall clock falls roughly linearly with jobs up to");
        println!("the core count; the report column must read `yes` on every row.");
        return ExitCode::SUCCESS;
    }

    println!();
    let mut ok = true;
    if deterministic {
        println!("OK: reports identical across all worker counts");
    } else {
        println!("FAIL: a worker count changed the campaign report");
        ok = false;
    }
    match speedup_at_4 {
        Some(mut speedup) if cores >= 4 => {
            // Shared CI runners are noisy; before failing the gate,
            // re-measure the 1-vs-4 pair up to twice and keep the best
            // ratio — a genuine scaling regression fails all attempts.
            for attempt in 0..2 {
                if speedup >= 3.0 {
                    break;
                }
                println!(
                    "  below threshold at {speedup:.2}x, re-measuring \
                     (attempt {} of 2)…",
                    attempt + 1
                );
                let one = run(&model, episodes, 1, reps);
                let four = run(&model, episodes, 4, reps);
                speedup = speedup.max(one.millis / four.millis);
            }
            if speedup >= 3.0 {
                println!("OK: 4 workers are {speedup:.2}x faster than 1 (>= 3x required)");
            } else {
                println!("FAIL: 4 workers are only {speedup:.2}x faster than 1 (>= 3x required)");
                ok = false;
            }
        }
        Some(speedup) => {
            println!(
                "skipped: speedup gate needs >= 4 cores, this machine has {cores} \
                 (measured {speedup:.2}x)"
            );
        }
        None => {
            println!("FAIL: the 4-worker row did not run");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
