//! Lifecycle e2e: protocol roundtrip, session recycling, hot-reload
//! (success and structured rollback), drain shutdown, overload shedding,
//! and the health/metrics endpoints — all over real sockets.

mod common;

use std::time::Duration;

use common::{admin, start, test_config, wait_until, Client, RULEBOOK};
use lomon_serve::Server;

/// One connection, two streams: a violating one, then a clean one on the
/// same recycled session. Exercises ready/verdict/summary frames and the
/// per-connection stream index.
#[test]
fn roundtrip_verdicts_and_recycled_streams() {
    let server = start(RULEBOOK);
    let mut client = Client::connect(server.local_addr());

    let ready = client.read_line();
    assert!(ready.contains("\"type\": \"ready\""), "got: {ready}");
    assert!(ready.contains("\"generation\": 1"), "got: {ready}");
    assert!(ready.contains("\"properties\": 2"), "got: {ready}");
    assert!(ready.contains("\"backend\": \"fused\""), "got: {ready}");

    // Stream 0: `start` before the configuration triple — violated.
    client.send("{\"time\": \"10ns\", \"name\": \"start\"}");
    let verdict = client.read_line();
    assert!(verdict.contains("\"type\": \"verdict\""), "got: {verdict}");
    assert!(verdict.contains("\"stream\": 0"), "got: {verdict}");
    assert!(
        verdict.contains("\"verdict\": \"violated\""),
        "got: {verdict}"
    );
    assert!(verdict.contains("\"diagnostic\""), "got: {verdict}");

    client.send("{\"end\": \"1us\"}");
    let mut summary = client.read_line();
    // Skip the still-open properties' `"final": false` lines.
    while summary.contains("\"final\": false") {
        summary = client.read_line();
    }
    assert!(summary.contains("\"type\": \"summary\""), "got: {summary}");
    assert!(summary.contains("\"stream\": 0"), "got: {summary}");
    assert!(summary.contains("\"ok\": false"), "got: {summary}");
    assert!(summary.contains("\"violations\": 1"), "got: {summary}");

    // Stream 1, same connection, recycled session: clean configuration.
    for frame in [
        "{\"time\": \"20ns\", \"name\": \"set_imgAddr\"}",
        "{\"time\": \"30ns\", \"name\": \"set_glAddr\"}",
        "{\"time\": \"40ns\", \"name\": \"set_glSize\"}",
        "{\"time\": \"50ns\", \"name\": \"start\"}",
        "{\"end\": \"1us\"}",
    ] {
        client.send(frame);
    }
    let tail = client.finish();
    let summary = tail
        .lines()
        .find(|l| l.contains("\"type\": \"summary\""))
        .expect("second summary");
    assert!(summary.contains("\"stream\": 1"), "got: {summary}");
    assert!(summary.contains("\"ok\": true"), "got: {summary}");
    assert!(summary.contains("\"violations\": 0"), "got: {summary}");

    assert_eq!(server.metrics().streams.get(), 2);
    assert_eq!(server.metrics().panics.get(), 0);
    // The clean disconnect parks the session for the next connection.
    wait_until("session parked", Duration::from_secs(5), || {
        let (status, body) = admin(server.admin_addr(), "GET", "/health", "");
        status == 200 && body.contains("\"pooled_sessions\": 1")
    });
}

/// A timed deadline expires through a time advance carried by an unknown
/// event name — unknown names are not interned, but their timestamps
/// still drive the deadline sweep.
#[test]
fn deadline_fires_on_unknown_name_time_advance() {
    let server = start(RULEBOOK);
    let mut client = Client::connect(server.local_addr());
    client.read_line(); // ready

    client.send("{\"time\": \"10ns\", \"name\": \"go\"}");
    client.send("{\"time\": \"200ns\", \"name\": \"never_subscribed\"}");
    let verdict = client.read_line();
    assert!(
        verdict.contains("\"verdict\": \"violated\""),
        "got: {verdict}"
    );
    assert!(verdict.contains("deadline"), "got: {verdict}");
    drop(client);
    drop(server);
}

/// A clean EOF mid-stream finalizes like an `end` at the last seen
/// timestamp.
#[test]
fn clean_eof_finalizes_the_stream() {
    let server = start(RULEBOOK);
    let mut client = Client::connect(server.local_addr());
    client.read_line(); // ready
    client.send("{\"time\": \"10ns\", \"name\": \"set_imgAddr\"}");
    let out = client.finish();
    let summary = out
        .lines()
        .find(|l| l.contains("\"type\": \"summary\""))
        .expect("summary on clean EOF");
    assert!(summary.contains("\"ok\": true"), "got: {summary}");
    assert_eq!(server.metrics().streams.get(), 1);
}

/// Hot reload swaps the program for new streams only: the in-flight
/// stream keeps its pinned two-property program to the end, while a
/// stream opened after the reload sees the one-property generation 2.
#[test]
fn hot_reload_swaps_for_new_streams_only() {
    let server = start(RULEBOOK);
    let mut pinned = Client::connect(server.local_addr());
    pinned.read_line(); // ready, generation 1
    pinned.send("{\"time\": \"10ns\", \"name\": \"set_imgAddr\"}");

    let (status, body) = admin(
        server.admin_addr(),
        "POST",
        "/reload",
        "go => out:done within 50 ns\n",
    );
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"ok\": true"), "body: {body}");
    assert!(body.contains("\"generation\": 2"), "body: {body}");
    assert!(body.contains("\"properties\": 1"), "body: {body}");
    assert_eq!(server.generation(), 2);

    let mut fresh = Client::connect(server.local_addr());
    let ready = fresh.read_line();
    assert!(ready.contains("\"generation\": 2"), "got: {ready}");
    assert!(ready.contains("\"properties\": 1"), "got: {ready}");
    drop(fresh);

    // The pinned stream still runs the old two-property program: its
    // final report carries a `"final": false` line for property index 1.
    pinned.send("{\"end\": \"1us\"}");
    let out = pinned.finish();
    assert!(
        out.lines()
            .any(|l| l.contains("\"index\": 1") && l.contains("\"final\": false")),
        "pinned stream lost its program: {out}"
    );
    assert!(out.contains("\"type\": \"summary\""), "got: {out}");
    assert_eq!(server.metrics().reloads.get(), 1);
}

/// A failing reload answers 422 with structured diagnostics and leaves
/// the serving program untouched — proven by a post-failure stream that
/// still gets correct verdicts from the old rulebook.
#[test]
fn failed_reload_leaves_serving_program_untouched() {
    let server = start(RULEBOOK);

    // An empty rulebook is rejected with the L001 lint diagnostic.
    let (status, body) = admin(server.admin_addr(), "POST", "/reload", "");
    assert_eq!(status, 422, "body: {body}");
    assert!(body.contains("\"ok\": false"), "body: {body}");
    assert!(body.contains("\"generation\": 1"), "body: {body}");
    assert!(body.contains("L001"), "body: {body}");

    // So is one that does not parse.
    let (status, body) = admin(server.admin_addr(), "POST", "/reload", "all{ << <<\n");
    assert_eq!(status, 422, "body: {body}");
    assert!(body.contains("\"diagnostics\": ["), "body: {body}");

    assert_eq!(server.generation(), 1);
    assert_eq!(server.metrics().reload_failures.get(), 2);
    assert_eq!(server.metrics().reloads.get(), 0);

    // The old program still serves — and still catches violations.
    let mut client = Client::connect(server.local_addr());
    let ready = client.read_line();
    assert!(ready.contains("\"generation\": 1"), "got: {ready}");
    client.send("{\"time\": \"10ns\", \"name\": \"start\"}");
    let verdict = client.read_line();
    assert!(
        verdict.contains("\"verdict\": \"violated\""),
        "got: {verdict}"
    );
}

/// Drain shutdown flushes every in-flight stream's final report before
/// the server exits.
#[test]
fn drain_flushes_in_flight_streams() {
    let mut server = start(RULEBOOK);
    let mut client = Client::connect(server.local_addr());
    client.read_line(); // ready
    client.send("{\"time\": \"10ns\", \"name\": \"start\"}");
    // Reading the pushed verdict guarantees the event was processed
    // before we ask for the drain.
    let verdict = client.read_line();
    assert!(
        verdict.contains("\"verdict\": \"violated\""),
        "got: {verdict}"
    );

    let (status, body) = admin(server.admin_addr(), "POST", "/shutdown", "");
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"draining\": true"), "body: {body}");

    let out = client.read_to_eof();
    assert!(out.contains("\"type\": \"draining\""), "got: {out}");
    let summary = out
        .lines()
        .find(|l| l.contains("\"type\": \"summary\""))
        .expect("drained stream flushed its final report");
    assert!(summary.contains("\"ok\": false"), "got: {summary}");

    server.wait();
    assert_eq!(server.metrics().drained.get(), 1);
}

/// Connections over the in-flight budget are shed with an explicit
/// overload frame and a clean close — never queued.
#[test]
fn overload_sheds_excess_connections() {
    let mut config = test_config();
    config.max_streams = 2;
    let server = Server::start(config, RULEBOOK).expect("server starts");

    let mut c1 = Client::connect(server.local_addr());
    let mut c2 = Client::connect(server.local_addr());
    c1.read_line();
    c2.read_line(); // both admitted

    let shed = Client::connect(server.local_addr());
    let out = shed.read_to_eof();
    assert!(out.contains("\"type\": \"overload\""), "got: {out}");
    assert_eq!(server.metrics().overloads.get(), 1);

    // Freeing a slot re-opens admission.
    drop(c1);
    wait_until("slot freed", Duration::from_secs(5), || {
        server.metrics().active_streams.get() < 2.0
    });
    let mut c4 = Client::connect(server.local_addr());
    let ready = c4.read_line();
    assert!(ready.contains("\"type\": \"ready\""), "got: {ready}");
    drop(c4);
    drop(c2);
}

/// The health endpoint reports status, generation, and stream counts;
/// unknown routes get a 404.
#[test]
fn health_and_unknown_routes() {
    let server = start(RULEBOOK);
    let (status, body) = admin(server.admin_addr(), "GET", "/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""), "body: {body}");
    assert!(body.contains("\"generation\": 1"), "body: {body}");
    assert!(body.contains("\"active_streams\": 0"), "body: {body}");

    let (status, _) = admin(server.admin_addr(), "GET", "/nope", "");
    assert_eq!(status, 404);
}

/// With a metrics listener configured, the serve families show up on the
/// shared Prometheus endpoint.
#[test]
fn metrics_endpoint_exposes_serve_families() {
    let mut config = test_config();
    config.metrics = Some("127.0.0.1:0".to_owned());
    let server = Server::start(config, RULEBOOK).expect("server starts");
    let addr = server.metrics_addr().expect("metrics listener");

    let mut client = Client::connect(server.local_addr());
    client.read_line();
    drop(client);

    let (status, body) = admin(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("lomon_serve_connections_total"),
        "body: {body}"
    );
    assert!(body.contains("lomon_serve_panics_total 0"), "body: {body}");
}
