//! Streaming monitoring: compile a rulebook once, check many live event
//! streams against it — no materialized trace, verdicts reported the
//! moment they finalize.
//!
//! ```sh
//! cargo run --example streaming_watch
//! ```
//!
//! This is the library-level counterpart of `lomon watch`; it also shows
//! the dispatch statistics that make the inverted index's win measurable.

use lomon::engine::{DispatchMode, Engine};
use lomon::trace::{SimTime, TimedEvent, Vocabulary};

fn main() {
    let mut voc = Vocabulary::new();

    // The rulebook: Example 2 (configuration before start), a guard on the
    // DMA channel, and Example 3's timed response — compiled once, shared
    // by every session.
    let engine = Engine::compile(
        &[
            "all{set_imgAddr, set_glAddr, set_glSize} << start once",
            "dma_setup << dma_go repeated",
            "start => out:set_irq within 1 ms",
        ],
        &mut voc,
    )
    .expect("rulebook compiles");
    println!("rulebook: {} properties", engine.len());

    // Stream 1: a nominal run. Events arrive one by one, as a simulation
    // or a socket would deliver them.
    let nominal = [
        (10, "set_glAddr"),
        (25, "set_imgAddr"),
        (31, "dma_setup"),
        (40, "set_glSize"),
        (52, "dma_go"),
        (60, "start"),
        (900, "set_irq"),
    ];
    println!("\n== stream 1 (nominal) ==");
    let mut session = engine.session();
    // One reused buffer for the per-event verdict poll — the hot-path
    // pattern: `drain_newly_final_into` moves the ids without allocating.
    let mut finalized = Vec::new();
    for (us, name) in nominal {
        let name = voc.intern(name, lomon::trace::Direction::Input);
        session.ingest(TimedEvent::new(name, SimTime::from_us(us)));
        session.drain_newly_final_into(&mut finalized);
        for &id in &finalized {
            println!(
                "  at {}: [{}] {}",
                SimTime::from_us(us),
                session.verdict(id as usize),
                session.engine().property_display(id as usize),
            );
        }
    }
    let report = session.finish(SimTime::from_us(1000));
    println!("  end: {}", report.stats.render());
    assert!(report.is_ok());

    // Stream 2: the DMA fires without setup — the violation finalizes
    // mid-stream, with diagnostics naming the offending event.
    println!("\n== stream 2 (dma misuse) ==");
    let mut session = engine.session();
    for (us, name) in [(5, "dma_go"), (9, "set_imgAddr")] {
        let name = voc.intern(name, lomon::trace::Direction::Input);
        session.ingest(TimedEvent::new(name, SimTime::from_us(us)));
        session.drain_newly_final_into(&mut finalized);
        for &id in &finalized {
            let id = id as usize;
            println!(
                "  at {}: [{}] {}",
                SimTime::from_us(us),
                session.verdict(id),
                session.engine().property_display(id),
            );
            if let Some(violation) = session.violation(id) {
                println!("    {}", violation.display(&voc));
            }
        }
    }
    let report = session.finish(SimTime::from_us(10));
    println!("  end: {}", report.stats.render());
    assert!(!report.is_ok());

    // Same stream through the naive broadcast comparator: identical
    // verdicts, strictly more monitor steps — the index's win.
    let mut naive = engine.session_with(DispatchMode::Broadcast);
    for (us, name) in [(5, "dma_go"), (9, "set_imgAddr")] {
        let name = voc.intern(name, lomon::trace::Direction::Input);
        naive.ingest(TimedEvent::new(name, SimTime::from_us(us)));
    }
    let naive_report = naive.finish(SimTime::from_us(10));
    println!("\nbroadcast comparator: {}", naive_report.stats.render());
    assert_eq!(
        report.properties[1].verdict,
        naive_report.properties[1].verdict
    );
    assert!(report.stats.monitor_steps <= naive_report.stats.monitor_steps);
}
