//! S3: monitoring overhead on the virtual platform — the Fig. 1/2 framework
//! in action. Runs the face-recognition scenario with and without online
//! monitors and compares wall-clock time and kernel statistics.
//!
//! Run with `cargo run -p lomon-bench --bin platform_overhead --release`.

use std::time::Instant;

use lomon_tlm::scenario::{run_scenario, ScenarioConfig};

fn measure(monitors: bool, runs: u32) -> (f64, u64, usize) {
    let mut dispatched = 0;
    let mut events = 0;
    let start = Instant::now();
    for seed in 0..runs {
        let mut config = ScenarioConfig::nominal(u64::from(seed) + 1);
        config.captures = 16;
        config.monitors = monitors;
        let report = run_scenario(&config);
        assert!(report.all_ok(), "nominal scenario must stay clean");
        dispatched += report.stats.dispatched;
        events += report.trace.len();
    }
    (start.elapsed().as_secs_f64(), dispatched, events)
}

fn main() {
    const RUNS: u32 = 150;
    println!("S3 — platform monitoring overhead ({RUNS} nominal runs, 16 captures each)");
    let (with, dispatched_with, events) = measure(true, RUNS);
    let (without, dispatched_without, _) = measure(false, RUNS);
    println!("  without monitors: {without:.3}s  ({dispatched_without} kernel dispatches)");
    println!("  with    monitors: {with:.3}s  ({dispatched_with} kernel dispatches)");
    println!("  interface events observed: {events}");
    let overhead = (with - without) / without.max(1e-9) * 100.0;
    let per_event_ns = (with - without) / events.max(1) as f64 * 1e9;
    println!("  relative overhead: {overhead:.1}%");
    println!("  monitor cost per observed event: {per_event_ns:.0} ns");
    println!();
    println!("Expected shape: sub-microsecond monitor cost per event (the Drct");
    println!("monitors do Θ(max |α(F)|) work per event). The *relative* figure");
    println!("is an upper bound: this substitute platform simulates almost for");
    println!("free, while a real SystemC model does orders of magnitude more");
    println!("work per event, making the same per-event cost vanish.");
}
