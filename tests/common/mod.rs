//! Shared harness for the CLI integration suites (`cli_smoke`,
//! `engine_stream`): spawn the `lomon` binary from the manifest directory
//! and capture its output, optionally piping a stream to stdin.
#![allow(dead_code)] // each suite uses its own subset of the helpers

use std::io::Write as _;
use std::path::Path;
use std::process::{Command, Output, Stdio};

/// The checked-in example trace (exactly `lomon gen <example-2> 7 3`).
pub const FIXTURE: &str = "tests/fixtures/ipu_config.trace";

/// The paper's Example 2, repeated flavour.
pub const PROPERTY: &str = "all{set_imgAddr, set_glAddr, set_glSize} << start repeated";

/// Run `lomon <args>` with nothing on stdin.
pub fn lomon(args: &[&str]) -> Output {
    lomon_with_stdin(args, "")
}

/// Run `lomon <args>` with `input` piped to stdin.
pub fn lomon_with_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lomon"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lomon");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stream");
    child.wait_with_output().expect("lomon exits")
}

/// The fixture's text, for piping through `lomon watch`.
pub fn fixture_text() -> String {
    std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE))
        .expect("read fixture")
}

/// Lossy UTF-8 view of captured stdout.
pub fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Lossy UTF-8 view of captured stderr.
pub fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}
