//! Bounded-model walkers over compiled programs.
//!
//! All three semantic lint analyses (vacuity, subsumption, conflict) reduce
//! to reachability questions over the *finite* state space of a
//! [`CompiledMonitor`]: the cell automata have six states, counters
//! saturate at the range bounds, and the episode clocks of timed programs
//! only matter up to the deadline budget. The walkers below explore that
//! space breadth-first under a **unit-step time model** — event `k` of a
//! trace happens at `k` nanoseconds — plus a *gap* branch that advances
//! time by one step without an event (needed to witness facts that require
//! a deadline to expire before the trace continues). States are
//! deduplicated through [`CompiledMonitor::analysis_key`], which is exact
//! for this model: two monitors with equal keys at equal `now` are
//! indistinguishable under every future unit-step input, so
//! shallowest-first visiting loses no facts.
//!
//! The dead-table walk is different: it runs the whole exploration at a
//! *constant* time 0, where no deadline can ever fire. Every cell
//! configuration reachable by **any** real-time trace over the branch
//! names is reachable at time 0 too (cell transitions are
//! time-independent, and deadline misses only ever stop a run early), so
//! the fixpoint over-approximates reachability and the unmarked entries
//! are genuinely dead.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use lomon_trace::{Name, NameSet, SimTime, TimedEvent};

use crate::compiled::{CompiledMonitor, CompiledProgram};
use crate::verdict::{Monitor, Verdict};

/// `(ok, success)` of a monitor if observation ended now: un-violated, and
/// un-violated with at least one non-vacuously satisfied episode.
fn finish_facts(mon: &CompiledMonitor, now: SimTime) -> (bool, bool) {
    let mut probe = mon.clone();
    let verdict = probe.finish(now);
    let ok = verdict != Verdict::Violated;
    (ok, ok && probe.satisfied_episodes() > 0)
}

/// Whether some trace of at most `horizon` unit-step events lets the
/// property finish un-violated with a non-vacuously satisfied episode.
///
/// `Some(false)` is a *vacuity* verdict: within the bounded model the
/// property can never fire. Returns `None` if the walk would exceed
/// `budget` distinct states.
pub fn satisfiable(program: &Arc<CompiledProgram>, horizon: usize, budget: usize) -> Option<bool> {
    let branch: Vec<Name> = program.alphabet().iter().collect();
    let root = CompiledMonitor::new(Arc::clone(program)).without_diagnostics();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(root.analysis_key(SimTime::from_ns(0)));
    queue.push_back((root, 0usize));
    while let Some((mon, depth)) = queue.pop_front() {
        let now = SimTime::from_ns(depth as u64);
        let (_, succ) = finish_facts(&mon, now);
        if succ {
            return Some(true);
        }
        if depth == horizon || mon.verdict().is_final() {
            continue;
        }
        if visited.len() > budget {
            return None;
        }
        let next = SimTime::from_ns(depth as u64 + 1);
        for choice in std::iter::once(None).chain(branch.iter().copied().map(Some)) {
            let mut successor = mon.clone();
            match choice {
                Some(name) => {
                    successor.observe(TimedEvent::new(name, next));
                }
                None => {
                    successor.advance_time(next);
                }
            }
            if visited.insert(successor.analysis_key(next)) {
                queue.push_back((successor, depth + 1));
            }
        }
    }
    Some(false)
}

/// Joint bounded-model facts about an ordered pair of programs `(i, j)`,
/// collected in one product walk over the union alphabet (plus the gap
/// branch). Every field is an *existence* fact over traces of at most the
/// walk's horizon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairFacts {
    /// Some trace finishes with `i` un-violated but `j` violated.
    pub ok_i_not_j: bool,
    /// Some trace finishes with `j` un-violated but `i` violated.
    pub ok_j_not_i: bool,
    /// Some trace satisfies `i` non-vacuously while `j` stays un-violated.
    pub succ_i_ok_j: bool,
    /// Some trace satisfies `j` non-vacuously while `i` stays un-violated.
    pub succ_j_ok_i: bool,
    /// `i` is non-vacuously satisfiable at all (ignoring `j`'s verdict).
    pub succ_i: bool,
    /// `j` is non-vacuously satisfiable at all (ignoring `i`'s verdict).
    pub succ_j: bool,
}

impl PairFacts {
    fn all_set(&self) -> bool {
        self.ok_i_not_j
            && self.ok_j_not_i
            && self.succ_i_ok_j
            && self.succ_j_ok_i
            && self.succ_i
            && self.succ_j
    }

    /// Whether `j` is subsumed by `i`: every violation `j` can raise, `i`
    /// raises too (equivalently, every trace admitted by `i` is admitted
    /// by `j`), within the bounded model.
    pub fn subsumes_j(&self) -> bool {
        !self.ok_i_not_j
    }

    /// Whether `i` is subsumed by `j` (the mirror of
    /// [`PairFacts::subsumes_j`]).
    pub fn subsumes_i(&self) -> bool {
        !self.ok_j_not_i
    }

    /// Whether the pair conflicts: both are individually satisfiable, but
    /// no bounded trace satisfies either one non-vacuously while keeping
    /// the other un-violated.
    pub fn conflicting(&self) -> bool {
        self.succ_i && self.succ_j && !self.succ_i_ok_j && !self.succ_j_ok_i
    }
}

/// Walk the product of two programs to `horizon` unit steps and collect
/// [`PairFacts`]. Returns `None` if the walk would exceed `budget`
/// distinct product states.
pub fn pair_facts(
    a: &Arc<CompiledProgram>,
    b: &Arc<CompiledProgram>,
    horizon: usize,
    budget: usize,
) -> Option<PairFacts> {
    let mut alpha = a.alphabet().clone();
    alpha.union_with(b.alphabet());
    let branch: Vec<Name> = alpha.iter().collect();
    let t0 = SimTime::from_ns(0);
    let roots = (
        CompiledMonitor::new(Arc::clone(a)).without_diagnostics(),
        CompiledMonitor::new(Arc::clone(b)).without_diagnostics(),
    );
    let product_key = |ma: &CompiledMonitor, mb: &CompiledMonitor, now: SimTime| {
        let mut key = ma.analysis_key(now);
        let split = key.len() as u64;
        key.push(split);
        key.extend(mb.analysis_key(now));
        key
    };
    let mut facts = PairFacts::default();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(product_key(&roots.0, &roots.1, t0));
    queue.push_back((roots, 0usize));
    while let Some(((ma, mb), depth)) = queue.pop_front() {
        let now = SimTime::from_ns(depth as u64);
        let (ok_i, succ_i) = finish_facts(&ma, now);
        let (ok_j, succ_j) = finish_facts(&mb, now);
        facts.ok_i_not_j |= ok_i && !ok_j;
        facts.ok_j_not_i |= ok_j && !ok_i;
        facts.succ_i_ok_j |= succ_i && ok_j;
        facts.succ_j_ok_i |= succ_j && ok_i;
        facts.succ_i |= succ_i;
        facts.succ_j |= succ_j;
        if facts.all_set() {
            return Some(facts);
        }
        // Once both monitors are final, every extension repeats the same
        // finish facts — the frontier adds nothing.
        if depth == horizon || (ma.verdict().is_final() && mb.verdict().is_final()) {
            continue;
        }
        if visited.len() > budget {
            return None;
        }
        let next = SimTime::from_ns(depth as u64 + 1);
        for choice in std::iter::once(None).chain(branch.iter().copied().map(Some)) {
            let (mut na, mut nb) = (ma.clone(), mb.clone());
            match choice {
                Some(name) => {
                    na.observe(TimedEvent::new(name, next));
                    nb.observe(TimedEvent::new(name, next));
                }
                None => {
                    na.advance_time(next);
                    nb.advance_time(next);
                }
            }
            if visited.insert(product_key(&na, &nb, next)) {
                queue.push_back(((na, nb), depth + 1));
            }
        }
    }
    Some(facts)
}

/// Compute the liveness mask of a program's action table under a branch
/// set restricted to `corpus` (or the full alphabet when `None`): entry
/// `e` is live iff some state reachable via corpus-name events reads `e`
/// effectively (see [`CompiledMonitor::mark_live_actions`]). The walk is
/// a fixpoint at constant time 0 — a sound over-approximation of
/// real-time reachability, see the module docs. Returns `None` if it
/// would exceed `budget` distinct states.
pub(crate) fn live_mask(
    program: &Arc<CompiledProgram>,
    corpus: Option<&NameSet>,
    budget: usize,
) -> Option<Vec<bool>> {
    let branch: Vec<Name> = program
        .alphabet()
        .iter()
        .filter(|&n| corpus.is_none_or(|c| c.contains(n)))
        .filter(|&n| program.action_row(n).is_some())
        .collect();
    let mut live = vec![false; program.action_count()];
    let t0 = SimTime::from_ns(0);
    let root = CompiledMonitor::new(Arc::clone(program)).without_diagnostics();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(root.analysis_key(t0));
    queue.push_back(root);
    while let Some(mon) = queue.pop_front() {
        mon.mark_live_actions(&branch, &mut live);
        if mon.verdict().is_final() {
            continue;
        }
        if visited.len() > budget {
            return None;
        }
        for &name in &branch {
            let mut successor = mon.clone();
            successor.observe(TimedEvent::new(name, t0));
            if visited.insert(successor.analysis_key(t0)) {
                queue.push_back(successor);
            }
        }
    }
    Some(live)
}
