//! # lomon-core — loose-ordering patterns and direct monitors
//!
//! This crate is the heart of the reproduction of *"Efficient Monitoring of
//! Loose-Ordering Properties for SystemC/TLM"* (Romenska & Maraninchi, DATE
//! 2016): the **loose-ordering** specification patterns and their **direct
//! translation into efficient monitors** (the paper's `Drct` strategy).
//!
//! A loose-ordering removes over-constraints on the *order* of component
//! interactions: "when a component needs several input data before one of
//! the functions it provides can be started, the order in which the input
//! data elements are provided is usually irrelevant".
//!
//! ## Layout
//!
//! * [`ast`] — the pattern grammar of Fig. 3 (ranges, fragments,
//!   loose-orderings, antecedent requirements, timed implications);
//! * [`wf`] — the well-formedness side conditions (alphabet disjointness…);
//! * [`parse`] — a textual property language,
//!   e.g. `all{set_imgAddr, set_glAddr, set_glSize} << start once`;
//! * [`context`] — the recognition contexts `(B, C, Ac, Af, s)` of Fig. 4;
//! * [`recognizer`] — the elementary 6-state range recognizer of Fig. 5;
//! * [`compose`] — synchronous (fragment) and sequential (loose-ordering)
//!   composition of recognizers;
//! * [`antecedent`], [`timed`] — the two root-pattern monitors;
//! * [`monitor`] — validation + construction entry point
//!   ([`monitor::build_monitor`]);
//! * [`compiled`] — the flat-table execution backend: recognizer trees
//!   lowered once into cell arenas + dense event→action tables
//!   ([`compiled::compile_monitor`]), verdict- and ops-identical to the
//!   interpreter but with an allocation-free integer hot path;
//! * [`verdict`] — four-valued verdicts, violation diagnostics and the
//!   object-safe [`verdict::Monitor`] trait;
//! * [`witness`] — verdict provenance: the bounded flight recorder of
//!   contributing steps and the replayable [`witness::Witness`] chain
//!   behind every violation in explain mode;
//! * [`semantics`] — an independent reference semantics (pattern →
//!   finite automaton) used as the ground-truth oracle in tests;
//! * [`complexity`] — the Drct cost model of Section 7;
//! * [`analysis`] — whole-rulebook static analysis over the compiled
//!   representation: vacuity, subsumption, conflict, coverage and
//!   dead-table detection, reported as coded [`analysis::Diagnostic`]s.
//!
//! ## Quick start
//!
//! ```
//! use lomon_core::parse::parse_property;
//! use lomon_core::monitor::build_monitor;
//! use lomon_core::verdict::{run_to_end, Verdict};
//! use lomon_trace::{Trace, Vocabulary};
//!
//! let mut voc = Vocabulary::new();
//! let prop = parse_property(
//!     "all{set_imgAddr, set_glAddr, set_glSize} << start once",
//!     &mut voc,
//! )
//! .expect("parses");
//! let mut monitor = build_monitor(prop, &voc).expect("well-formed");
//!
//! let img = voc.lookup("set_imgAddr").unwrap();
//! let gl = voc.lookup("set_glAddr").unwrap();
//! let sz = voc.lookup("set_glSize").unwrap();
//! let start = voc.lookup("start").unwrap();
//! // Any permutation of the three writes is accepted before start.
//! let verdict = run_to_end(&mut monitor, &Trace::from_names([gl, sz, img, start]));
//! assert_eq!(verdict, Verdict::Satisfied);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod antecedent;
pub mod ast;
pub mod compiled;
pub mod complexity;
pub mod compose;
pub mod context;
pub mod fused;
pub mod monitor;
pub mod parse;
pub mod recognizer;
pub mod semantics;
pub mod timed;
pub mod verdict;
pub mod wf;
pub mod witness;

pub use analysis::{AnalysisOptions, DiagCode, Diagnostic, Severity};
pub use antecedent::AntecedentMonitor;
pub use ast::{Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication};
pub use compiled::{compile_monitor, CompiledMonitor, CompiledProgram, PruneStats};
pub use fused::{FusedProgram, Sharing};
pub use monitor::{build_monitor, PropertyMonitor};
pub use timed::TimedImplicationMonitor;
pub use verdict::{run_to_end, Monitor, Obligation, Verdict, Violation, ViolationKind};
pub use wf::WfError;
pub use witness::{replay_witness, FlightRecorder, Witness, WitnessStep};
