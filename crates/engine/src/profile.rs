//! Hot-property profiler: replay a recorded trace through the fused
//! rulebook program and attribute the monitoring work — steps and
//! wall-clock nanoseconds — to each unique recognizer group.
//!
//! The fused backend already collapses structurally identical properties
//! into shared groups; this module answers the follow-up question *"which
//! group is my rulebook spending its time in?"*. [`profile_trace`] drives
//! a purpose-built replay loop that mirrors a [`Session`](crate::Session)
//! step for step (same indexed dispatch, same deadline sweep, same
//! retirement — so the per-group step counts equal the session's dispatch
//! statistics) while timing every monitor call with a monotonic clock.
//!
//! Attribution can additionally flow through the observability stack: pass
//! a [`Registry`] and each group's totals land in the
//! `lomon_group_steps_total{group=…}` counter and
//! `lomon_group_step_ns{group=…}` histogram families, ready for the
//! Prometheus/NDJSON renderings every other lomon metric uses.

use std::time::Instant;

use lomon_core::verdict::{Monitor, Verdict};
use lomon_obs::Registry;
use lomon_trace::{json_escape, SimTime, TimedEvent};

use std::fmt::Write as _;

use crate::compile::Engine;

/// The profile of one unique recognizer group over a replayed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupProfile {
    /// Group id in the fused program (first-appearance order).
    pub group: usize,
    /// Monitor steps the group performed (observes plus deadline sweeps —
    /// the same accounting as
    /// [`DispatchStats::monitor_steps`](crate::DispatchStats)).
    pub steps: u64,
    /// Wall-clock nanoseconds spent inside the group's monitor calls.
    pub ns: u64,
    /// Member property ids served by the group, ascending.
    pub members: Vec<u32>,
}

/// Everything [`profile_trace`] measured: per-group profiles ranked
/// hottest first, plus the replay totals.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Per-group profiles, sorted by steps descending (ties broken by
    /// ascending group id, so the ranking is deterministic even when the
    /// nanosecond readings are not).
    pub groups: Vec<GroupProfile>,
    /// Events replayed.
    pub events: u64,
    /// Properties whose final verdict was violated.
    pub violations: u64,
    /// Wall-clock nanoseconds summed over every monitor call.
    pub total_ns: u64,
}

/// Replay `events` through a fresh fused instantiation of `engine`,
/// timing every monitor call, then finish at `end_time`. When `registry`
/// is given, per-group totals are also exported through the
/// `lomon_group_steps_total` / `lomon_group_step_ns` metric families.
///
/// The replay mirrors an indexed-dispatch fused session exactly (deadline
/// sweep first, then the event's subscribed groups, retirement on final
/// verdicts), so the step counts are the session's dispatch statistics
/// broken down by group; only the timing instrumentation is extra.
pub fn profile_trace(
    engine: &Engine,
    events: &[TimedEvent],
    end_time: SimTime,
    registry: Option<&Registry>,
) -> ProfileReport {
    let fused = engine.fused();
    let mut monitors = fused.instantiate();
    let n = monitors.len();
    let mut active = vec![true; n];
    let mut deadlines: Vec<Option<SimTime>> = vec![None; n];
    let mut steps = vec![0u64; n];
    let mut ns = vec![0u64; n];
    let timed_flags = fused.timed_flags();
    let mut seen = 0u64;

    for &event in events {
        if active.iter().all(|a| !a) {
            seen += 1;
            continue;
        }
        seen += 1;
        let (units, bases) = fused.subscribers(event.name);
        // Deadline sweep, excluding the event's own subscribers (their
        // observe re-checks the deadline) — same order as the session's.
        for &g in fused.timed_groups() {
            let g = g as usize;
            if !active[g] || units.contains(&(g as u32)) {
                continue;
            }
            if deadlines[g].is_some_and(|d| event.time > d) {
                let started = Instant::now();
                let verdict = monitors[g].advance_time(event.time);
                ns[g] += elapsed_ns(started);
                steps[g] += 1;
                if verdict.is_final() {
                    active[g] = false;
                    deadlines[g] = None;
                } else {
                    deadlines[g] = monitors[g].deadline();
                }
            }
        }
        for (&g, &base) in units.iter().zip(bases) {
            let g = g as usize;
            if !active[g] {
                continue;
            }
            let started = Instant::now();
            let verdict = monitors[g].observe_routed(event, base);
            ns[g] += elapsed_ns(started);
            steps[g] += 1;
            if verdict.is_final() {
                active[g] = false;
                deadlines[g] = None;
            } else if timed_flags[g] {
                deadlines[g] = monitors[g].deadline();
            }
        }
    }
    // Close every live group at end of observation; `finish` is not a
    // dispatch step (sessions do not count it either), but its time is.
    for (g, monitor) in monitors.iter_mut().enumerate() {
        if active[g] {
            let started = Instant::now();
            monitor.finish(end_time);
            ns[g] += elapsed_ns(started);
        }
    }

    let violations = (0..engine.len())
        .filter(|&id| monitors[fused.group_of(id)].verdict() == Verdict::Violated)
        .count() as u64;

    if let Some(registry) = registry {
        for g in 0..n {
            let label = vec![("group", format!("g{g}"))];
            registry
                .counter_with(
                    "lomon_group_steps_total",
                    "Monitor steps per fused recognizer group",
                    label.clone(),
                )
                .add(steps[g]);
            registry
                .histogram_with(
                    "lomon_group_step_ns",
                    "Wall-clock nanoseconds per fused group over a profiled trace",
                    label,
                )
                .record(ns[g]);
        }
    }

    let mut groups: Vec<GroupProfile> = (0..n)
        .map(|g| GroupProfile {
            group: g,
            steps: steps[g],
            ns: ns[g],
            members: fused.members(g).to_vec(),
        })
        .collect();
    groups.sort_by(|a, b| b.steps.cmp(&a.steps).then(a.group.cmp(&b.group)));
    ProfileReport {
        groups,
        events: seen,
        violations,
        total_ns: ns.iter().sum(),
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl ProfileReport {
    /// Multi-line human rendering: the replay totals, then the `top`
    /// hottest groups with their member properties.
    pub fn render_text(&self, engine: &Engine, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profiled {} events over {} groups ({} properties, {} violations)",
            self.events,
            self.groups.len(),
            engine.len(),
            self.violations,
        );
        for p in self.groups.iter().take(top) {
            let _ = writeln!(
                out,
                "  group {}: {} steps, {} ns, {} member(s)",
                p.group,
                p.steps,
                p.ns,
                p.members.len(),
            );
            for &id in &p.members {
                let _ = writeln!(out, "    - {}", engine.property_display(id as usize));
            }
        }
        out
    }

    /// One-line JSON rendering with the same `top`-group ranking.
    pub fn render_json(&self, engine: &Engine, top: usize) -> String {
        let mut out = format!(
            "{{\"events\": {}, \"group_count\": {}, \"violations\": {}, \"groups\": [",
            self.events,
            self.groups.len(),
            self.violations,
        );
        for (k, p) in self.groups.iter().take(top).enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"group\": {}, \"steps\": {}, \"ns\": {}, \"members\": [",
                p.group, p.steps, p.ns,
            );
            for (j, &id) in p.members.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "\"{}\"",
                    json_escape(engine.property_display(id as usize))
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_trace::Vocabulary;

    fn events(voc: &Vocabulary, seq: &[(&str, u64)]) -> Vec<TimedEvent> {
        seq.iter()
            .map(|&(n, ns)| TimedEvent::new(voc.lookup(n).unwrap(), SimTime::from_ns(ns)))
            .collect()
    }

    #[test]
    fn profile_step_counts_match_session_stats() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(
            &[
                "all{a, b} << start repeated",
                "all{a, b} << start repeated",
                "go => out:done within 50 ns",
            ],
            &mut voc,
        )
        .expect("compiles");
        let trace = events(
            &voc,
            &[("a", 10), ("b", 20), ("start", 30), ("go", 40), ("a", 200)],
        );
        let profile = profile_trace(&engine, &trace, SimTime::from_ns(300), None);
        let mut session = engine.session();
        session.ingest_batch(&trace);
        session.close(SimTime::from_ns(300));
        let profiled: u64 = profile.groups.iter().map(|g| g.steps).sum();
        assert_eq!(profiled, session.stats().monitor_steps);
        assert_eq!(profile.events, session.stats().events);
        // The shared group (2 members) did the most steps and ranks first.
        assert_eq!(profile.groups[0].members.len(), 2);
        assert_eq!(profile.violations, 1); // the missed 50ns deadline
    }

    #[test]
    fn profile_exports_group_metrics() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(&["all{a, b} << start once"], &mut voc).expect("compiles");
        let trace = events(&voc, &[("a", 10), ("b", 20), ("start", 30)]);
        let registry = Registry::new();
        profile_trace(&engine, &trace, SimTime::from_ns(40), Some(&registry));
        let text = registry.render_prometheus();
        assert!(
            text.contains("lomon_group_steps_total{group=\"g0\"} 3"),
            "{text}"
        );
        assert!(text.contains("lomon_group_step_ns"), "{text}");
    }

    #[test]
    fn render_text_lists_members_and_json_parses_shape() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(
            &["all{a, b} << start once", "all{a, b} << start once"],
            &mut voc,
        )
        .expect("compiles");
        let trace = events(&voc, &[("a", 10)]);
        let profile = profile_trace(&engine, &trace, SimTime::from_ns(20), None);
        let text = profile.render_text(&engine, 5);
        assert!(text.contains("group 0: 1 steps"), "{text}");
        assert!(text.contains("- all{a, b} << start once"), "{text}");
        let json = profile.render_json(&engine, 5);
        assert!(json.starts_with("{\"events\": 1"), "{json}");
        assert!(
            json.contains("\"members\": [\"all{a, b} << start once\""),
            "{json}"
        );
    }
}
