//! Slice helpers (stand-in for `rand::seq`).

use crate::Rng;

/// Random slice operations (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
