//! The daemon: listener, acceptor, overload shedding, graceful lifecycle.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use lomon_core::analysis::Diagnostic;
use lomon_engine::Backend;
use lomon_obs::{MetricsServer, Registry};

use crate::admin;
use crate::conn::handle_connection;
use crate::metrics::ServeMetrics;
use crate::pool::SessionPool;
use crate::program::Program;

/// Tunables of one [`Server`]. The defaults are production-shaped; tests
/// shrink the timeouts to keep the suites fast.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Stream listener address (`"127.0.0.1:0"` picks a free port).
    pub listen: String,
    /// Admin endpoint address (health, reload, shutdown).
    pub admin: String,
    /// Optional `/metrics` listener address (Prometheus + NDJSON).
    pub metrics: Option<String>,
    /// Execution backend every stream session runs on.
    pub backend: Backend,
    /// Refuse rulebooks (initial and reloaded) with analysis warnings.
    pub deny_warnings: bool,
    /// Global in-flight budget: connections over it are shed with an
    /// `{"type": "overload"}` frame and a clean close.
    pub max_streams: usize,
    /// Hard cap on one NDJSON frame; longer frames are dropped unbuffered.
    pub max_frame_bytes: usize,
    /// Liveness tick: how often an idle handler wakes to check for
    /// drain/stop/idle-reap conditions.
    pub read_tick: Duration,
    /// Streams silent for this long are reaped.
    pub idle_timeout: Duration,
    /// Clients that do not drain our verdict writes within this window
    /// are abandoned (slow-loris readers).
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_owned(),
            admin: "127.0.0.1:0".to_owned(),
            metrics: None,
            backend: Backend::Fused,
            deny_warnings: false,
            max_streams: 256,
            max_frame_bytes: 64 * 1024,
            read_tick: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// Why [`Server::start`] refused to come up.
#[derive(Debug)]
pub enum StartError {
    /// The initial rulebook did not compile (or tripped `deny_warnings`).
    Compile(Vec<Diagnostic>),
    /// A listener could not be bound.
    Io(io::Error),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Compile(diagnostics) => {
                writeln!(f, "rulebook rejected:")?;
                for d in diagnostics {
                    writeln!(f, "  {}", d.render_text())?;
                }
                Ok(())
            }
            StartError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for StartError {
    fn from(e: io::Error) -> Self {
        StartError::Io(e)
    }
}

/// State shared by the acceptor, the connection handlers and the admin
/// endpoint.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    program: RwLock<Arc<Program>>,
    next_generation: AtomicU64,
    pub(crate) pool: SessionPool,
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) draining: AtomicBool,
    pub(crate) stop: AtomicBool,
    /// The stream listener's bound address, so the admin endpoint can wake
    /// the acceptor out of `accept()` on shutdown.
    listen_addr: SocketAddr,
}

impl Shared {
    /// The current program snapshot; connections pin it for their lifetime.
    pub(crate) fn current_program(&self) -> Arc<Program> {
        Arc::clone(&self.program.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub(crate) fn generation(&self) -> u64 {
        self.current_program().generation
    }

    /// Compile `text` aside and atomically swap it in for *new* streams.
    /// In-flight streams keep their pinned program untouched either way.
    ///
    /// # Errors
    ///
    /// All compile/lint diagnostics; the serving program is untouched.
    pub(crate) fn reload(&self, text: &str) -> Result<Arc<Program>, Vec<Diagnostic>> {
        let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
        match Program::compile(text, generation, self.config.deny_warnings) {
            Ok(program) => {
                let program = Arc::new(program);
                *self.program.write().unwrap_or_else(PoisonError::into_inner) =
                    Arc::clone(&program);
                // Parked sessions belong to the old engine; drop them
                // eagerly rather than letting acquire() discard one by one.
                self.pool.purge();
                self.metrics.reloads.inc();
                Ok(program)
            }
            Err(diagnostics) => {
                self.metrics.reload_failures.inc();
                Err(diagnostics)
            }
        }
    }

    /// Begin drain-then-exit: stop accepting, finish in-flight streams,
    /// wake the acceptor so `Server::wait` can finish joining.
    pub(crate) fn request_shutdown(&self) {
        self.draining.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.listen_addr);
    }
}

/// A running `lomon serve` daemon. Dropping it performs a full
/// drain-then-exit shutdown.
pub struct Server {
    addr: SocketAddr,
    admin_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    // Held for its Drop: the /metrics listener lives exactly as long as
    // the server.
    _metrics_server: Option<MetricsServer>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("admin_addr", &self.admin_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Compile `rulebook` (one property per line, `#` comments) and start
    /// serving it under `config`.
    ///
    /// # Errors
    ///
    /// [`StartError::Compile`] with every diagnostic if the rulebook is
    /// rejected; [`StartError::Io`] if a listener cannot be bound.
    pub fn start(config: ServeConfig, rulebook: &str) -> Result<Server, StartError> {
        let program =
            Program::compile(rulebook, 1, config.deny_warnings).map_err(StartError::Compile)?;
        let registry = Arc::new(Registry::new());
        let metrics = ServeMetrics::register(&registry);
        let metrics_server = match &config.metrics {
            Some(addr) => Some(MetricsServer::bind(addr, Arc::clone(&registry))?),
            None => None,
        };
        let metrics_addr = metrics_server.as_ref().map(MetricsServer::local_addr);
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let admin_listener = TcpListener::bind(&config.admin)?;
        let admin_addr = admin_listener.local_addr()?;

        let shared = Arc::new(Shared {
            pool: SessionPool::new(config.max_streams),
            config,
            program: RwLock::new(Arc::new(program)),
            next_generation: AtomicU64::new(2),
            metrics,
            in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            listen_addr: addr,
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("lomon-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &handlers))?
        };
        let admin_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lomon-serve-admin".to_owned())
                .spawn(move || admin::run(&admin_listener, &shared))?
        };

        Ok(Server {
            addr,
            admin_addr,
            metrics_addr,
            shared,
            acceptor: Some(acceptor),
            admin: Some(admin_thread),
            handlers,
            _metrics_server: metrics_server,
        })
    }

    /// The stream listener's bound address (port `0` resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admin endpoint's bound address.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin_addr
    }

    /// The `/metrics` listener's bound address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The rulebook generation new streams are currently served under.
    pub fn generation(&self) -> u64 {
        self.shared.generation()
    }

    /// Properties in the rulebook new streams are currently served under.
    pub fn properties(&self) -> usize {
        self.shared.current_program().engine.len()
    }

    /// The daemon's own metric families — live counters, readable at any
    /// time (the chaos suite asserts on them directly).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Hot-reload the rulebook (see [`Shared::reload`] semantics: swap for
    /// new streams only; on error the serving program is untouched).
    ///
    /// # Errors
    ///
    /// Every compile/lint diagnostic of the rejected rulebook.
    pub fn reload(&self, rulebook: &str) -> Result<u64, Vec<Diagnostic>> {
        self.shared.reload(rulebook).map(|p| p.generation)
    }

    /// Begin drain-then-exit without blocking: new connections are
    /// refused, in-flight streams flush their final reports and close.
    pub fn begin_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until the server has fully shut down (drain requested via
    /// [`Server::begin_shutdown`] or the admin `POST /shutdown`), joining
    /// every thread.
    pub fn wait(&mut self) {
        while !self.shared.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join_all();
    }

    /// Drain and shut down, blocking until every stream has flushed.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The admin loop is blocked in accept(); wake it.
        let _ = TcpStream::connect(self.admin_addr);
        if let Some(admin) = self.admin.take() {
            let _ = admin.join();
        }
        let handles: Vec<_> = self
            .handlers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept connections until stopped, shedding at the in-flight budget.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        shared.metrics.connections.inc();
        if shared.draining.load(Ordering::Acquire) {
            let _ = refuse(&stream, "{\"type\": \"draining\"}\n");
            continue;
        }
        // Overload shedding: over budget, the client gets an explicit
        // load-shed frame and a clean close — not an unbounded queue.
        let admitted = shared
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < shared.config.max_streams).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            shared.metrics.overloads.inc();
            let _ = refuse(
                &stream,
                "{\"type\": \"overload\", \"reason\": \"server at capacity\"}\n",
            );
            continue;
        }
        set_active_gauge(shared);
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("lomon-serve-conn".to_owned())
                .spawn(move || {
                    handle_connection(&shared, &stream);
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                    set_active_gauge(&shared);
                })
        };
        match handle {
            Ok(handle) => {
                let mut handlers = handlers.lock().unwrap_or_else(PoisonError::into_inner);
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(_) => {
                // Could not spawn: shed as overload.
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                set_active_gauge(shared);
                shared.metrics.overloads.inc();
            }
        }
    }
}

fn set_active_gauge(shared: &Shared) {
    #[allow(clippy::cast_precision_loss)]
    shared
        .metrics
        .active_streams
        .set(shared.in_flight.load(Ordering::Acquire) as f64);
}

/// Best-effort one-frame refusal with a short write timeout, so a shed
/// client cannot hold the acceptor hostage.
fn refuse(stream: &TcpStream, frame: &str) -> io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    let mut stream = stream.try_clone()?;
    stream.write_all(frame.as_bytes())
}
