//! Sessions: per-stream monitor state over a shared compiled [`Engine`].
//!
//! A session steps *dispatch units*: with the per-property backends
//! ([`Backend::Compiled`], [`Backend::Interp`]) one unit is one property's
//! monitor; with the fused backend ([`Backend::Fused`], the default) one
//! unit is one **unique recognizer group** of the fused rulebook program,
//! serving every property that structurally deduplicated into it. All
//! bookkeeping (liveness, deadlines, statistics) is unit-granular; the
//! per-property surface ([`Session::verdict`], [`Session::violation`],
//! [`Session::ops`], reports, [`Session::take_newly_final`]) fans group
//! results back out through the fused program's member table.
//!
//! ## Parking and recycling
//!
//! A `Session<'e>` borrows its engine, which pins it to one stack frame.
//! Long-running daemons (`lomon serve`) instead keep a *pool* of
//! [`SessionState`]s: [`Session::into_state`] detaches a session's
//! allocations from the engine borrow, and [`Engine::resume`] re-attaches
//! them — rejecting states parked under a *different* engine, whose
//! monitors would otherwise keep stepping the old program. Park → resume →
//! [`Session::reset`] is the zero-alloc recycling hot path: no monitor
//! arena, queue or statistics block is ever reallocated.

use std::sync::Arc;

use lomon_core::compiled::CompiledMonitor;
use lomon_core::monitor::PropertyMonitor;
use lomon_core::verdict::{Monitor, Verdict, Violation};
use lomon_core::witness::Witness;
use lomon_trace::{SimTime, TimedEvent};

use crate::compile::Engine;
use crate::metrics::{MetricsSink, SessionMetrics};
use crate::report::{DispatchStats, EngineReport, PropertyReport};

/// Backend-polymorphic routed stepping: the indexed dispatcher hands each
/// stepped monitor the precomputed action-table row of the event's name.
/// The flat-table monitors consume it and skip their own projection
/// lookup; the interpreter has no cheaper entry point and re-projects
/// internally.
trait RoutedMonitor: Monitor {
    fn observe_routed(&mut self, event: TimedEvent, base: u32) -> Verdict;
}

impl RoutedMonitor for PropertyMonitor {
    #[inline]
    fn observe_routed(&mut self, event: TimedEvent, _base: u32) -> Verdict {
        self.observe(event)
    }
}

impl RoutedMonitor for CompiledMonitor {
    // Forced inline: this is the per-event body of the batch hot loop, and
    // the `#[inline(always)]` chain below it (observe_routed → antecedent_at
    // → step_window) only lands inside the loop if this wrapper dissolves.
    #[inline(always)]
    fn observe_routed(&mut self, event: TimedEvent, base: u32) -> Verdict {
        CompiledMonitor::observe_routed(self, event, base)
    }
}

/// How a session routes events to monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Inverted-index dispatch: an event only steps subscribed, still-live
    /// units (plus a deadline sweep for timed units). The default.
    Indexed,
    /// Naive baseline: every live unit is stepped on every event. Kept for
    /// the benchmarks and as a differential-testing oracle — both modes
    /// produce identical verdicts.
    Broadcast,
}

/// Which execution backend steps a session's monitors.
///
/// All three backends are verdict-, diagnostic- and ops-identical per
/// property (enforced by the oracle proptests and the `hot_loop --check`
/// CI gate); they differ only in *how much work* a monitor step shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The fused rulebook program ([`lomon_core::fused`]): one flat-table
    /// cell arena per **unique** recognizer group, stepped once per event
    /// and fanned out to every structurally identical property. The
    /// default for `check`/`watch`/`smc` — on overlapping rulebooks it
    /// does strictly less work than stepping each property.
    Fused,
    /// Per-property flat-table monitors ([`lomon_core::compiled`]): one
    /// action-table index plus integer state updates per property per
    /// event, no allocation. The differential oracle for the fused
    /// backend, and the sensible choice when no two properties share
    /// structure.
    Compiled,
    /// Tree-walking interpreter monitors ([`lomon_core::monitor`]): enum
    /// dispatch and per-recognizer bitset classification. The root
    /// differential oracle and the paper-shaped reference; use it to
    /// cross-check a suspicious verdict or in a debugger.
    Interp,
}

impl Backend {
    /// Stable lowercase name, as spelled on the CLI (`--backend fused`)
    /// and in machine-readable reports (`lomon watch` NDJSON summary).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Fused => "fused",
            Backend::Compiled => "compiled",
            Backend::Interp => "interp",
        }
    }
}

/// The per-stream monitor instances, one dense arena per backend. Keeping
/// the arena monomorphic (instead of an enum per monitor) lets the dispatch
/// loops specialize per backend: monitor steps are direct, inlinable calls
/// and the arena has no per-element tag. The `Fused` arena holds one
/// monitor per unique group of the fused program — the "global cell arena"
/// of the rulebook — while the other two hold one monitor per property.
#[derive(Debug, Clone)]
enum MonitorArena {
    Interp(Vec<PropertyMonitor>),
    Compiled(Vec<CompiledMonitor>),
    Fused(Vec<CompiledMonitor>),
}

impl MonitorArena {
    /// Number of dispatch units (monitors) in the arena.
    fn len(&self) -> usize {
        match self {
            MonitorArena::Interp(ms) => ms.len(),
            MonitorArena::Compiled(ms) => ms.len(),
            MonitorArena::Fused(ms) => ms.len(),
        }
    }

    /// The monitor reporting for property `id` — the property's own
    /// monitor, or its group's shared monitor under the fused backend.
    fn property_monitor(&self, engine: &Engine, id: usize) -> &dyn Monitor {
        match self {
            MonitorArena::Interp(ms) => &ms[id],
            MonitorArena::Compiled(ms) => &ms[id],
            MonitorArena::Fused(ms) => &ms[engine.fused.group_of(id)],
        }
    }
}

/// One monitored event stream: monitor instances (cloned prototypes,
/// per-property compiled arenas, or the fused per-group arena) plus the
/// per-stream dispatch state.
///
/// Verdict-wise, a session behaves exactly as if each property's monitor
/// had individually observed the whole stream and then
/// [`lomon_core::verdict::Monitor::finish`]ed — see the crate docs for why
/// indexed dispatch and fused sharing both preserve this.
///
/// Units whose verdict goes final are *retired*: they stop receiving
/// events, and their member property ids are queued for
/// [`Session::take_newly_final`] so a streaming caller can report verdicts
/// as they happen.
#[derive(Debug, Clone)]
pub struct Session<'e> {
    engine: &'e Engine,
    arena: MonitorArena,
    core: Core,
}

/// Everything of a session except the monitors and the engine borrow —
/// split out so the dispatch methods can borrow the arena and the
/// bookkeeping state independently, stay generic over the backend's
/// monitor type, and so a parked [`SessionState`] owns no engine
/// reference. All arrays are *unit*-granular (property or fused group,
/// per the backend).
#[derive(Debug, Clone)]
struct Core {
    mode: DispatchMode,
    backend: Backend,
    active: Vec<bool>,
    /// Live units (monitors still stepped).
    active_units: usize,
    /// Live properties (what the public surface reports); equals
    /// `active_units` for the per-property backends.
    active_props: usize,
    /// Per-unit open hard deadline (timed units only).
    deadlines: Vec<Option<SimTime>>,
    /// Cached minimum of `deadlines` over live timed units.
    next_deadline: Option<SimTime>,
    deadline_dirty: bool,
    /// Property ids (always property-granular, fanned out from groups).
    newly_final: Vec<u32>,
    stats: DispatchStats,
    finished: bool,
    /// Telemetry sink, if a registry is attached. The hot loops never see
    /// it: deltas are flushed at batch boundaries only.
    metrics: Option<MetricsSink>,
}

/// A parked session: the monitor arenas and dispatch bookkeeping of a
/// [`Session`], detached from the engine borrow so they can rest in a
/// pool, cross a thread, or outlive the stack frame that served a stream.
/// Obtained from [`Session::into_state`]; revived with [`Engine::resume`],
/// which refuses states parked under a different engine (their monitors
/// still point at that engine's compiled programs).
///
/// All allocations are retained: park → resume → [`Session::reset`] is
/// the zero-alloc session-recycling path a daemon's stream pool runs on.
#[derive(Debug, Clone)]
pub struct SessionState {
    arena: MonitorArena,
    core: Core,
    /// Identity of the engine this state was parked under (the address of
    /// its fused program, shared by engine clones).
    token: usize,
}

impl SessionState {
    /// The execution backend the parked monitors were built for.
    pub fn backend(&self) -> Backend {
        self.core.backend
    }

    /// The dispatch mode the parked session ran with.
    pub fn mode(&self) -> DispatchMode {
        self.core.mode
    }
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine, mode: DispatchMode, backend: Backend) -> Self {
        let arena = match backend {
            // Interp monitors deep-clone the prototype tree; compiled
            // monitors allocate only their state arenas and share the
            // program tables; the fused arena allocates one state per
            // *unique* group.
            Backend::Interp => MonitorArena::Interp(
                engine
                    .properties
                    .iter()
                    .map(|p| p.prototype.clone())
                    .collect(),
            ),
            Backend::Compiled => MonitorArena::Compiled(
                engine
                    .properties
                    .iter()
                    .map(|p| CompiledMonitor::new(Arc::clone(&p.program)))
                    .collect(),
            ),
            Backend::Fused => MonitorArena::Fused(engine.fused.instantiate()),
        };
        let units = arena.len();
        Session {
            engine,
            arena,
            core: Core {
                mode,
                backend,
                active: vec![true; units],
                active_units: units,
                active_props: engine.len(),
                deadlines: vec![None; units],
                next_deadline: None,
                deadline_dirty: false,
                newly_final: Vec::new(),
                stats: base_stats(engine),
                finished: false,
                metrics: None,
            },
        }
    }

    /// Detach this session from its engine borrow, keeping every
    /// allocation (monitor arenas, queues, statistics, attached metrics
    /// sink) and the exact mid-stream state. The counterpart of
    /// [`Engine::resume`]; together they let a daemon pool recycled
    /// sessions across stream lifetimes.
    pub fn into_state(self) -> SessionState {
        SessionState {
            arena: self.arena,
            core: self.core,
            token: self.engine.identity(),
        }
    }

    /// Attach this session to a [`SessionMetrics`] bundle (obtained from
    /// [`SessionMetrics::register`]): from now on the session flushes its
    /// dispatch-statistics deltas into the shared counters at every batch
    /// boundary. Attaching mid-stream flushes nothing retroactively for
    /// counters already at a watermark of zero — i.e. the whole history of
    /// this stream is credited on the next flush.
    pub fn attach_metrics(&mut self, metrics: Arc<SessionMetrics>) {
        self.core.metrics = Some(MetricsSink::new(metrics));
    }

    /// Put every monitor of this session into *explain mode*: each unit
    /// keeps a [`FlightRecorder`](lomon_core::witness::FlightRecorder) ring
    /// of at most `capacity` contributing steps, so violations can be
    /// explained with a [`Witness`] chain ([`Session::witness`], and the
    /// `witness` field of [`PropertyReport`]). `capacity == 0` detaches the
    /// recorders again. Like [`Session::attach_metrics`], the detached
    /// default costs nothing: reports and NDJSON output are byte-identical
    /// to a session that never heard of explain mode.
    pub fn enable_explain(&mut self, capacity: usize) {
        match &mut self.arena {
            MonitorArena::Interp(ms) => {
                for m in ms.iter_mut() {
                    m.set_explain(capacity);
                }
            }
            MonitorArena::Compiled(ms) | MonitorArena::Fused(ms) => {
                for m in ms.iter_mut() {
                    m.set_explain(capacity);
                }
            }
        }
    }

    /// The witness chain recorded for property `id`, if the session is in
    /// explain mode and the property's monitor has recorded any steps.
    /// Under the fused backend this is the shared group's chain —
    /// structurally identical properties advance through identical steps,
    /// so the chain explains every member alike.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn witness(&self, id: usize) -> Option<Witness> {
        self.arena.property_monitor(self.engine, id).witness()
    }

    /// The engine this session was opened from.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The dispatch mode this session runs with.
    pub fn mode(&self) -> DispatchMode {
        self.core.mode
    }

    /// The execution backend this session's monitors run on.
    pub fn backend(&self) -> Backend {
        self.core.backend
    }

    /// Feed one event to every unit that can react to it.
    #[inline]
    pub fn ingest(&mut self, event: TimedEvent) {
        match &mut self.arena {
            MonitorArena::Interp(ms) => self.core.ingest_in(self.engine, ms, event),
            MonitorArena::Compiled(ms) => self.core.ingest_in(self.engine, ms, event),
            MonitorArena::Fused(ms) => self.core.ingest_in(self.engine, ms, event),
        }
        self.core.flush_metrics(self.engine);
    }

    /// Feed a batch of events (the bulk path: one call per recorded trace
    /// chunk instead of one per event).
    pub fn ingest_batch(&mut self, events: &[TimedEvent]) {
        match (&mut self.arena, self.core.mode) {
            (MonitorArena::Interp(ms), DispatchMode::Indexed) => {
                self.core.ingest_batch_indexed(self.engine, ms, events);
            }
            (MonitorArena::Compiled(ms), DispatchMode::Indexed) => {
                self.core.ingest_batch_indexed(self.engine, ms, events);
            }
            (MonitorArena::Fused(ms), DispatchMode::Indexed) => {
                self.core.ingest_batch_indexed(self.engine, ms, events);
            }
            (MonitorArena::Interp(ms), DispatchMode::Broadcast) => {
                self.core.ingest_batch_in(self.engine, ms, events);
            }
            (MonitorArena::Compiled(ms), DispatchMode::Broadcast) => {
                self.core.ingest_batch_in(self.engine, ms, events);
            }
            (MonitorArena::Fused(ms), DispatchMode::Broadcast) => {
                self.core.ingest_batch_in(self.engine, ms, events);
            }
        }
        self.core.flush_metrics(self.engine);
    }

    /// Notify the session that simulated time has advanced to `now` with no
    /// new event — lets timed monitors detect expired deadlines online.
    pub fn advance_time(&mut self, now: SimTime) {
        match &mut self.arena {
            MonitorArena::Interp(ms) => self.core.advance_time_in(self.engine, ms, now),
            MonitorArena::Compiled(ms) => self.core.advance_time_in(self.engine, ms, now),
            MonitorArena::Fused(ms) => self.core.advance_time_in(self.engine, ms, now),
        }
        self.core.flush_metrics(self.engine);
    }

    /// Declare end of observation and return the report. All still-live
    /// units get their final deadline check at `end_time`.
    pub fn finish(&mut self, end_time: SimTime) -> EngineReport {
        self.close(end_time);
        self.report()
    }

    /// Declare end of observation without materializing a report — the
    /// allocation-free variant of [`Session::finish`] for callers that poll
    /// verdicts with [`Session::verdict`] in a tight reuse loop (e.g. an
    /// SMC campaign running millions of episodes through one session).
    /// Idempotent, like `finish`.
    pub fn close(&mut self, end_time: SimTime) {
        let was_finished = self.core.finished;
        match &mut self.arena {
            MonitorArena::Interp(ms) => self.core.close_in(self.engine, ms, end_time),
            MonitorArena::Compiled(ms) => self.core.close_in(self.engine, ms, end_time),
            MonitorArena::Fused(ms) => self.core.close_in(self.engine, ms, end_time),
        }
        self.core.flush_metrics(self.engine);
        // Verdicts are counted exactly once per stream, at the
        // not-finished → finished transition (`close` is idempotent).
        if !was_finished && self.core.finished {
            if let Some(sink) = &self.core.metrics {
                for id in 0..self.engine.len() {
                    let verdict = self.arena.property_monitor(self.engine, id).verdict();
                    sink.metrics.verdict_counter(verdict).inc();
                }
                sink.metrics.streams.inc();
            }
        }
    }

    /// Snapshot the current per-property verdicts and dispatch statistics
    /// without ending the stream.
    pub fn report(&self) -> EngineReport {
        let properties = (0..self.engine.len())
            .map(|id| {
                let m = self.arena.property_monitor(self.engine, id);
                let verdict = m.verdict();
                PropertyReport {
                    index: id,
                    // An `Arc` bump, not a copy of the property text —
                    // reports in a tight reuse loop must not allocate per
                    // property.
                    property: Arc::clone(&self.engine.properties[id].display),
                    verdict,
                    violation: m.violation().cloned(),
                    // `witness()` is `None` unless explain mode is on, so
                    // detached sessions still build reports allocation-free
                    // (modulo the vectors they always built).
                    witness: if verdict == Verdict::Violated {
                        m.witness()
                    } else {
                        None
                    },
                }
            })
            .collect();
        let mut stats = self.core.stats;
        stats.properties = self.engine.len() as u64;
        stats.retired = (self.engine.len() - self.core.active_props) as u64;
        EngineReport {
            properties,
            stats,
            backend: self.core.backend.label(),
        }
    }

    /// Rewind every monitor to its initial state for the next stream,
    /// keeping all allocations. Statistics restart from zero.
    pub fn reset(&mut self) {
        // Credit whatever the last batch left unflushed before the
        // statistics restart from zero; the watermarks restart with them.
        self.core.flush_metrics(self.engine);
        match &mut self.arena {
            MonitorArena::Interp(ms) => {
                for m in ms.iter_mut() {
                    m.reset();
                }
            }
            MonitorArena::Compiled(ms) | MonitorArena::Fused(ms) => {
                for m in ms.iter_mut() {
                    m.reset();
                }
            }
        }
        let core = &mut self.core;
        let units = self.arena.len();
        for id in 0..units {
            core.active[id] = true;
            core.deadlines[id] = None;
        }
        core.active_units = units;
        core.active_props = self.engine.len();
        core.next_deadline = None;
        core.deadline_dirty = false;
        core.newly_final.clear();
        core.stats = base_stats(self.engine);
        core.finished = false;
        if let Some(sink) = &mut core.metrics {
            sink.flushed = Default::default();
        }
    }

    /// The ids of properties whose verdict went final since the last call,
    /// in finalization order. Streaming callers poll this after each
    /// [`Session::ingest`] to report verdicts as they happen.
    ///
    /// Allocates the returned vector; a per-event polling loop should
    /// prefer [`Session::drain_newly_final_into`] with a reused buffer.
    pub fn take_newly_final(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.core.newly_final)
    }

    /// Move the newly-final property ids into `out` (cleared first),
    /// reusing both buffers' capacity — the allocation-free variant of
    /// [`Session::take_newly_final`] for per-event polling loops (`watch`
    /// streams, SMC episode loops).
    pub fn drain_newly_final_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        out.append(&mut self.core.newly_final);
    }

    /// Current verdict of property `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn verdict(&self, id: usize) -> Verdict {
        self.arena.property_monitor(self.engine, id).verdict()
    }

    /// Violation report of property `id`, if it is violated.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn violation(&self, id: usize) -> Option<&Violation> {
        match &self.arena {
            MonitorArena::Interp(ms) => ms[id].violation(),
            MonitorArena::Compiled(ms) => ms[id].violation(),
            MonitorArena::Fused(ms) => ms[self.engine.fused.group_of(id)].violation(),
        }
    }

    /// Abstract operations executed for property `id` so far (the
    /// [`lomon_core::verdict::Monitor::ops`] instrumentation) — all three
    /// backends report identical per-property counts, which the oracle
    /// tests assert. Under the fused backend this is the shared group's
    /// counter: structurally identical properties perform identical
    /// abstract work, the fusion just executes it once.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ops(&self, id: usize) -> u64 {
        self.arena.property_monitor(self.engine, id).ops()
    }

    /// Number of properties still live (not retired).
    pub fn active_len(&self) -> usize {
        self.core.active_props
    }

    /// Whether every property has reached a final verdict — the stream can
    /// be abandoned early.
    pub fn is_settled(&self) -> bool {
        self.core.active_props == 0
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> &DispatchStats {
        &self.core.stats
    }
}

/// A fresh statistics block carrying the rulebook's static sharing facts
/// (identical for every backend, so differential stats comparisons between
/// backends stay meaningful).
fn base_stats(engine: &Engine) -> DispatchStats {
    let sharing = engine.fused.sharing();
    DispatchStats {
        total_cells: sharing.total_cells,
        unique_cells: sharing.unique_cells,
        ..DispatchStats::default()
    }
}

impl Engine {
    /// Re-attach a parked [`SessionState`] to this engine, reviving it as
    /// a [`Session`] in exactly the state it was parked in (mid-stream
    /// included). The zero-alloc counterpart of opening a fresh session —
    /// the recycling hook daemon stream pools are built on.
    ///
    /// # Errors
    ///
    /// Returns the state untouched if it was parked under a *different*
    /// engine (its monitors still reference that engine's compiled
    /// programs, so resuming here would silently run the wrong rulebook).
    /// Engine *clones* share identity with their original. Callers fall
    /// back to building a fresh session and dropping the stale state.
    // The Err variant carries the whole state back *by design*: the caller
    // keeps its allocations for reuse (or drops them); boxing would force
    // an allocation onto the zero-alloc happy path of `into_state`.
    #[allow(clippy::result_large_err)]
    pub fn resume(&self, state: SessionState) -> Result<Session<'_>, SessionState> {
        if state.token != self.identity() {
            return Err(state);
        }
        Ok(Session {
            engine: self,
            arena: state.arena,
            core: state.core,
        })
    }

    /// The identity token [`SessionState`]s are stamped with: the address
    /// of the shared fused program, which engine clones share and distinct
    /// compilations never do.
    pub(crate) fn identity(&self) -> usize {
        Arc::as_ptr(&self.fused) as usize
    }
}

impl Core {
    /// Flush the statistics accumulated since the last flush into the
    /// attached metrics sink, if any. Called at batch boundaries only —
    /// the common detached case is one branch on a `None`.
    fn flush_metrics(&mut self, engine: &Engine) {
        let Some(sink) = &mut self.metrics else {
            return;
        };
        let stats = &self.stats;
        let retired = (engine.len() - self.active_props) as u64;
        let m = &sink.metrics;
        let f = &mut sink.flushed;
        m.events.add(stats.events - f.events);
        m.monitor_steps.add(stats.monitor_steps - f.monitor_steps);
        m.steps_skipped.add(stats.steps_skipped - f.steps_skipped);
        m.shared_hits.add(stats.shared_hits - f.shared_hits);
        m.retirements.add(retired.saturating_sub(f.retired));
        f.events = stats.events;
        f.monitor_steps = stats.monitor_steps;
        f.steps_skipped = stats.steps_skipped;
        f.shared_hits = stats.shared_hits;
        f.retired = retired;
        #[allow(clippy::cast_precision_loss)]
        m.properties_live.set(self.active_props as f64);
    }

    /// How many properties one step of `unit` serves: the group's member
    /// count under the fused backend, 1 otherwise.
    #[inline]
    fn served_by(&self, engine: &Engine, unit: usize) -> u64 {
        match self.backend {
            Backend::Fused => u64::from(engine.fused.member_count(unit)),
            _ => 1,
        }
    }

    /// The CSR row of `name` at this backend's unit granularity: the
    /// subscribed unit ids (fused groups, or property ids) with each
    /// unit's precomputed action-table row offset for the name, in
    /// parallel.
    #[inline]
    fn routes<'e>(&self, engine: &'e Engine, name: lomon_trace::Name) -> (&'e [u32], &'e [u32]) {
        match self.backend {
            Backend::Fused => engine.fused.subscribers(name),
            _ => engine.prop_subscribers(name),
        }
    }

    /// The timed unit ids at this backend's granularity.
    #[inline]
    fn timed_units<'e>(&self, engine: &'e Engine) -> &'e [u32] {
        match self.backend {
            Backend::Fused => engine.fused.timed_groups(),
            _ => &engine.timed_ids,
        }
    }

    /// The dense unit → is-timed flags at this backend's granularity.
    #[inline]
    fn timed_flags<'e>(&self, engine: &'e Engine) -> &'e [bool] {
        match self.backend {
            Backend::Fused => engine.fused.timed_flags(),
            _ => &engine.timed_flags,
        }
    }

    #[inline]
    fn ingest_in<M: RoutedMonitor>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        event: TimedEvent,
    ) {
        self.stats.events += 1;
        match self.mode {
            DispatchMode::Broadcast => {
                for id in 0..monitors.len() {
                    if self.active[id] {
                        self.step_observe_plain(engine, monitors, id, event);
                    }
                }
            }
            DispatchMode::Indexed => {
                // One equal-length check up front lets the indexed loads
                // below share a single bound.
                assert!(
                    self.active.len() == monitors.len()
                        && self.timed_flags(engine).len() == monitors.len()
                        && self.deadlines.len() == monitors.len()
                );
                let (units, bases) = self.routes(engine, event.name);
                let live_before = self.active_props as u64;
                let mut served = 0u64;
                // Timed units can flip to Violated on *any* event whose
                // timestamp passes their hard deadline; sweep those first
                // (skipping subscribers, whose own `observe` re-checks the
                // deadline anyway). The guard keeps the common no-deadline
                // case to two flag loads.
                if self.deadline_dirty || self.next_deadline.is_some() {
                    served += self.sweep_deadlines(engine, monitors, event.time, units);
                }
                for (&u, &base) in units.iter().zip(bases) {
                    let u = u as usize;
                    if self.active[u] {
                        self.step_observe(engine, monitors, u, event, base);
                        served += self.served_by(engine, u);
                    }
                }
                self.stats.steps_skipped += live_before.saturating_sub(served);
            }
        }
    }

    fn ingest_batch_in<M: RoutedMonitor>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        events: &[TimedEvent],
    ) {
        for (k, &event) in events.iter().enumerate() {
            // Every monitor is quiescent once all verdicts are final; the
            // remaining events can only bump the event counter.
            if self.active_units == 0 {
                self.stats.events += (events.len() - k) as u64;
                return;
            }
            self.ingest_in(engine, monitors, event);
        }
    }

    /// The whole-trace fast path: like per-event [`Core::ingest_in`] under
    /// indexed dispatch, but with the statistics counters accumulated in
    /// locals across the batch instead of read-modify-written per event.
    /// Monomorphized per backend family so the per-property loop
    /// const-folds its fan-out to 1 (no member-count load, no shared-hit
    /// arithmetic) — worth ~10% on the disjoint hot loop.
    fn ingest_batch_indexed<M: RoutedMonitor>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        events: &[TimedEvent],
    ) {
        match self.backend {
            Backend::Fused => self.ingest_batch_indexed_in::<M, true>(engine, monitors, events),
            Backend::Compiled | Backend::Interp => {
                self.ingest_batch_indexed_in::<M, false>(engine, monitors, events);
            }
        }
    }

    fn ingest_batch_indexed_in<M: RoutedMonitor, const FUSED: bool>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        events: &[TimedEvent],
    ) {
        // Deadline bookkeeping can only arm inside a batch via a timed
        // unit's flag (every `deadline_dirty = true` writer is guarded by
        // it), so a batch that starts with no timed units, a clean dirty
        // flag and no pending deadline provably never sweeps — the
        // `TIMED = false` loop drops the per-event guard and the per-unit
        // flag load entirely.
        let untimed = self.timed_units(engine).is_empty()
            && !self.deadline_dirty
            && self.next_deadline.is_none();
        if untimed {
            self.batch_loop::<M, FUSED, false>(engine, monitors, events);
        } else {
            self.batch_loop::<M, FUSED, true>(engine, monitors, events);
        }
    }

    /// Kept out of line so each `(FUSED, TIMED)` instantiation owns an
    /// aligned symbol: inlining all four into the dispatcher lays the hot
    /// loops across each other's fall-through paths.
    #[inline(never)]
    fn batch_loop<M: RoutedMonitor, const FUSED: bool, const TIMED: bool>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        events: &[TimedEvent],
    ) {
        assert!(
            self.active.len() == monitors.len()
                && self.timed_flags(engine).len() == monitors.len()
                && self.deadlines.len() == monitors.len()
        );
        let timed_flags = self.timed_flags(engine);
        let mut seen = 0u64;
        let mut steps = 0u64;
        let mut shared = 0u64;
        // Skipped steps are accounted at batch grain: a unit's step always
        // serves live properties only, so per-event `served` never exceeds
        // the live count and `Σ(live - served) = Σlive - Σserved` exactly —
        // two running sums instead of a reset + saturating subtract per
        // event.
        let mut sum_live = 0u64;
        let mut sum_served = 0u64;
        for (k, &event) in events.iter().enumerate() {
            if self.active_units == 0 {
                seen += (events.len() - k) as u64;
                break;
            }
            seen += 1;
            sum_live += self.active_props as u64;
            // Const-dispatched route lookup: `FUSED` already pins the
            // backend family, so the per-event CSR fetch needs no load of
            // `self.backend`.
            let (units, bases) = if FUSED {
                engine.fused.subscribers(event.name)
            } else {
                engine.prop_subscribers(event.name)
            };
            if TIMED && (self.deadline_dirty || self.next_deadline.is_some()) {
                // The sweep updates `self.stats` through the slow path;
                // fold its counters into the locals afterwards.
                let before_steps = self.stats.monitor_steps;
                let before_shared = self.stats.shared_hits;
                sum_served += self.sweep_deadlines(engine, monitors, event.time, units);
                steps += self.stats.monitor_steps - before_steps;
                shared += self.stats.shared_hits - before_shared;
                self.stats.monitor_steps = before_steps;
                self.stats.shared_hits = before_shared;
            }
            for (&u, &base) in units.iter().zip(bases) {
                let u = u as usize;
                if self.active[u] {
                    let verdict = monitors[u].observe_routed(event, base);
                    let fan_out = if FUSED {
                        u64::from(engine.fused.member_count(u))
                    } else {
                        1
                    };
                    steps += 1;
                    sum_served += fan_out;
                    shared += fan_out - 1;
                    if verdict.is_final() {
                        self.retire(engine, u);
                    } else if TIMED && timed_flags[u] {
                        self.deadlines[u] = monitors[u].deadline();
                        self.deadline_dirty = true;
                    }
                }
            }
        }
        self.stats.events += seen;
        self.stats.monitor_steps += steps;
        self.stats.steps_skipped += sum_live - sum_served;
        self.stats.shared_hits += shared;
    }

    fn advance_time_in<M: Monitor>(&mut self, engine: &Engine, monitors: &mut [M], now: SimTime) {
        match self.mode {
            DispatchMode::Broadcast => {
                for id in 0..monitors.len() {
                    if self.active[id] {
                        self.step_advance(engine, monitors, id, now);
                    }
                }
            }
            DispatchMode::Indexed => {
                self.sweep_deadlines(engine, monitors, now, &[]);
            }
        }
    }

    fn close_in<M: Monitor>(&mut self, engine: &Engine, monitors: &mut [M], end_time: SimTime) {
        if !self.finished {
            for (id, monitor) in monitors.iter_mut().enumerate() {
                if !self.active[id] {
                    continue;
                }
                monitor.finish(end_time);
                if monitor.verdict().is_final() {
                    self.retire(engine, id);
                }
            }
            self.finished = true;
        }
    }

    /// Step unit `id` with `event`, recording the step and retiring the
    /// unit if its verdict went final.
    #[inline]
    fn step_observe<M: RoutedMonitor>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        id: usize,
        event: TimedEvent,
        base: u32,
    ) {
        let verdict = monitors[id].observe_routed(event, base);
        self.stats.monitor_steps += 1;
        self.stats.shared_hits += self.served_by(engine, id) - 1;
        if verdict.is_final() {
            self.retire(engine, id);
        } else if self.timed_flags(engine)[id] {
            self.deadlines[id] = monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    /// Step unit `id` with `event` without a routing hint (broadcast mode
    /// steps unsubscribed units too, so no row is available).
    fn step_observe_plain<M: Monitor>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        id: usize,
        event: TimedEvent,
    ) {
        let verdict = monitors[id].observe(event);
        self.stats.monitor_steps += 1;
        self.stats.shared_hits += self.served_by(engine, id) - 1;
        if verdict.is_final() {
            self.retire(engine, id);
        } else if self.timed_flags(engine)[id] {
            self.deadlines[id] = monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    /// Step unit `id` with a time notification.
    fn step_advance<M: Monitor>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        id: usize,
        now: SimTime,
    ) {
        let verdict = monitors[id].advance_time(now);
        self.stats.monitor_steps += 1;
        self.stats.shared_hits += self.served_by(engine, id) - 1;
        if verdict.is_final() {
            self.retire(engine, id);
        } else if self.timed_flags(engine)[id] {
            self.deadlines[id] = monitors[id].deadline();
            self.deadline_dirty = true;
        }
    }

    /// Retire unit `id`, fanning its member properties out to the
    /// newly-final queue (a per-property unit fans out to itself).
    fn retire(&mut self, engine: &Engine, id: usize) {
        if self.active[id] {
            self.active[id] = false;
            self.active_units -= 1;
            self.deadlines[id] = None;
            if self.timed_flags(engine)[id] {
                self.deadline_dirty = true;
            }
            match self.backend {
                Backend::Fused => {
                    let members = engine.fused.members(id);
                    self.active_props -= members.len();
                    self.newly_final.extend_from_slice(members);
                }
                _ => {
                    self.active_props -= 1;
                    self.newly_final.push(id as u32);
                }
            }
        }
    }

    /// Advance-time every live timed unit whose hard deadline `now` has
    /// passed, except subscribers of the current event (their unit ids are
    /// listed in `exclude_units`, at this backend's granularity; observing
    /// performs its own deadline check). Returns the number of
    /// *properties* served.
    fn sweep_deadlines<M: Monitor>(
        &mut self,
        engine: &Engine,
        monitors: &mut [M],
        now: SimTime,
        exclude_units: &[u32],
    ) -> u64 {
        self.refresh_next_deadline(engine);
        let Some(min) = self.next_deadline else {
            return 0;
        };
        if now <= min {
            return 0;
        }
        let timed = self.timed_units(engine);
        let mut served = 0;
        for &unit in timed {
            let id = unit as usize;
            if !self.active[id] || exclude_units.contains(&unit) {
                continue;
            }
            if self.deadlines[id].is_some_and(|d| now > d) {
                let fan_out = self.served_by(engine, id);
                self.step_advance(engine, monitors, id, now);
                served += fan_out;
            }
        }
        self.refresh_next_deadline(engine);
        served
    }

    fn refresh_next_deadline(&mut self, engine: &Engine) {
        if !self.deadline_dirty {
            return;
        }
        self.next_deadline = self
            .timed_units(engine)
            .iter()
            .filter(|&&id| self.active[id as usize])
            .filter_map(|&id| self.deadlines[id as usize])
            .min();
        self.deadline_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_trace::Vocabulary;

    fn event(voc: &Vocabulary, name: &str, ns: u64) -> TimedEvent {
        TimedEvent::new(voc.lookup(name).expect("known name"), SimTime::from_ns(ns))
    }

    fn two_property_engine(voc: &mut Vocabulary) -> Engine {
        Engine::compile(
            &["all{a, b} << start once", "go => out:done within 50 ns"],
            voc,
        )
        .expect("compiles")
    }

    #[test]
    fn indexed_steps_only_subscribers() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        // `a` concerns only property 0: one step, one skipped.
        session.ingest(event(&voc, "a", 10));
        assert_eq!(session.stats().monitor_steps, 1);
        assert_eq!(session.stats().steps_skipped, 1);
        // A name outside every alphabet steps nothing.
        voc.input("noise");
        session.ingest(event(&voc, "noise", 20));
        assert_eq!(session.stats().monitor_steps, 1);
        assert_eq!(session.stats().steps_skipped, 3);
        assert_eq!(session.stats().events, 2);
    }

    #[test]
    fn broadcast_steps_every_live_monitor() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session_with(DispatchMode::Broadcast);
        session.ingest(event(&voc, "a", 10));
        assert_eq!(session.stats().monitor_steps, 2);
        assert_eq!(session.stats().steps_skipped, 0);
    }

    #[test]
    fn final_monitors_are_retired_and_reported() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            session.ingest(event(&voc, name, ns));
        }
        // Property 0 is one-shot: Satisfied and retired.
        assert_eq!(session.take_newly_final(), vec![0]);
        assert_eq!(session.verdict(0), Verdict::Satisfied);
        assert_eq!(session.active_len(), 1);
        let steps = session.stats().monitor_steps;
        // Further `a` events step nobody: property 0 is retired.
        session.ingest(event(&voc, "a", 40));
        assert_eq!(session.stats().monitor_steps, steps);
        assert!(!session.is_settled());
    }

    #[test]
    fn deadline_sweep_catches_timeout_on_unrelated_event() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10)); // deadline now 60ns
                                               // `a` is outside the timed property's alphabet, but its timestamp
                                               // reveals the miss — exactly as a naive broadcast would.
        session.ingest(event(&voc, "a", 200));
        assert_eq!(session.verdict(1), Verdict::Violated);
        assert_eq!(session.take_newly_final(), vec![1]);
        assert!(session.violation(1).is_some());
    }

    #[test]
    fn advance_time_detects_timeout_without_events() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10));
        session.advance_time(SimTime::from_ns(59));
        assert_eq!(session.verdict(1), Verdict::Pending);
        session.advance_time(SimTime::from_ns(61));
        assert_eq!(session.verdict(1), Verdict::Violated);
    }

    #[test]
    fn finish_settles_open_obligations() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "go", 10));
        let report = session.finish(SimTime::from_ns(500));
        assert_eq!(report.properties[1].verdict, Verdict::Violated);
        assert!(!report.is_ok());
        // The antecedent never went final (safety, still consistent); only
        // the timed property is retired.
        assert_eq!(report.properties[0].verdict, Verdict::PresumablySatisfied);
        assert_eq!(report.stats.retired, 1);
        // Finishing twice is idempotent.
        let again = session.finish(SimTime::from_ns(500));
        assert_eq!(again.properties[1].verdict, Verdict::Violated);
    }

    #[test]
    fn batch_equals_one_by_one() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let events: Vec<TimedEvent> = [("a", 10), ("go", 20), ("b", 30), ("done", 40)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        let mut one = engine.session();
        for &e in &events {
            one.ingest(e);
        }
        let mut batch = engine.session();
        batch.ingest_batch(&events);
        let (a, b) = (
            one.finish(SimTime::from_ns(50)),
            batch.finish(SimTime::from_ns(50)),
        );
        assert_eq!(a.stats.monitor_steps, b.stats.monitor_steps);
        for (x, y) in a.properties.iter().zip(&b.properties) {
            assert_eq!(x.verdict, y.verdict);
        }
    }

    #[test]
    fn reset_reuses_the_session() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            session.ingest(event(&voc, name, ns));
        }
        session.finish(SimTime::from_ns(40));
        session.reset();
        assert_eq!(session.active_len(), 2);
        assert_eq!(session.stats().events, 0);
        assert_eq!(session.verdict(0), Verdict::PresumablySatisfied);
        assert!(session.take_newly_final().is_empty());
        // The reused session still works.
        session.ingest(event(&voc, "start", 10));
        assert_eq!(session.verdict(0), Verdict::Violated);
    }

    #[test]
    fn modes_agree_on_verdicts() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let events: Vec<TimedEvent> = [("go", 10), ("a", 100), ("b", 120), ("start", 130)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        let mut indexed = engine.session();
        let mut broadcast = engine.session_with(DispatchMode::Broadcast);
        indexed.ingest_batch(&events);
        broadcast.ingest_batch(&events);
        let (i, b) = (
            indexed.finish(SimTime::from_ns(200)),
            broadcast.finish(SimTime::from_ns(200)),
        );
        for (x, y) in i.properties.iter().zip(&b.properties) {
            assert_eq!(x.verdict, y.verdict, "property {}", x.property);
            assert_eq!(
                x.violation.as_ref().map(|v| v.kind),
                y.violation.as_ref().map(|v| v.kind)
            );
        }
        assert!(i.stats.monitor_steps < b.stats.monitor_steps);
    }

    #[test]
    fn fused_shares_identical_properties() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(
            &[
                "all{a, b} << start repeated",
                "all{a, b} << start repeated",
                "all{a, b} << start repeated",
                "b << go once",
            ],
            &mut voc,
        )
        .expect("compiles");
        let mut fused = engine.session(); // Backend::Fused is the default
        let mut compiled = engine.session_with_backend(DispatchMode::Indexed, Backend::Compiled);
        assert_eq!(fused.backend(), Backend::Fused);
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            let e = event(&voc, name, ns);
            fused.ingest(e);
            compiled.ingest(e);
        }
        // One shared step served properties 0–2; `b` also stepped property
        // 3's singleton group.
        assert_eq!(fused.stats().monitor_steps, 3 + 1);
        assert_eq!(compiled.stats().monitor_steps, 3 * 3 + 1);
        assert_eq!(fused.stats().shared_hits, 3 * 2);
        assert_eq!(fused.stats().unique_cells, 2 + 1);
        assert_eq!(fused.stats().total_cells, 3 * 2 + 1);
        for id in 0..engine.len() {
            assert_eq!(fused.verdict(id), compiled.verdict(id), "property {id}");
            assert_eq!(fused.ops(id), compiled.ops(id), "property {id}");
        }
    }

    #[test]
    fn metrics_flush_matches_stats_and_counts_verdicts_once() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let registry = lomon_obs::Registry::new();
        let metrics = SessionMetrics::register(&registry);
        let mut session = engine.session();
        session.attach_metrics(Arc::clone(&metrics));
        let events: Vec<TimedEvent> = [("a", 10), ("b", 20), ("start", 30)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        session.ingest_batch(&events);
        assert_eq!(metrics.events.get(), session.stats().events);
        assert_eq!(metrics.monitor_steps.get(), session.stats().monitor_steps);
        assert_eq!(metrics.steps_skipped.get(), session.stats().steps_skipped);
        assert_eq!(metrics.retirements.get(), 1); // property 0 went final
        session.close(SimTime::from_ns(40));
        assert_eq!(metrics.streams.get(), 1);
        assert_eq!(metrics.verdict_counter(Verdict::Satisfied).get(), 1);
        assert_eq!(
            metrics.verdict_counter(Verdict::PresumablySatisfied).get(),
            1
        );
        // close is idempotent: no double counting.
        session.close(SimTime::from_ns(40));
        assert_eq!(metrics.streams.get(), 1);
        assert_eq!(metrics.verdict_counter(Verdict::Satisfied).get(), 1);
        // A second stream through the reused session adds fresh deltas.
        let total = metrics.events.get();
        session.reset();
        session.ingest_batch(&events);
        assert_eq!(metrics.events.get(), total + events.len() as u64);
        session.close(SimTime::from_ns(40));
        assert_eq!(metrics.streams.get(), 2);
    }

    #[test]
    fn fused_retirement_fans_out_members() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(
            &[
                "all{a, b} << start once",
                "go => out:done within 50 ns",
                "all{a, b} << start once",
            ],
            &mut voc,
        )
        .expect("compiles");
        let mut session = engine.session();
        for (name, ns) in [("a", 10), ("b", 20), ("start", 30)] {
            session.ingest(event(&voc, name, ns));
        }
        // Both members of the shared group finalize together.
        let mut buffer = Vec::new();
        session.drain_newly_final_into(&mut buffer);
        assert_eq!(buffer, vec![0, 2]);
        assert_eq!(session.active_len(), 1);
        assert!(!session.is_settled());
        // And the drained buffer is reusable without reallocation.
        session.ingest(event(&voc, "go", 40));
        session.ingest(event(&voc, "a", 200));
        session.drain_newly_final_into(&mut buffer);
        assert_eq!(buffer, vec![1]);
        assert!(session.is_settled());
    }

    #[test]
    fn park_and_resume_preserves_mid_stream_state() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let mut session = engine.session();
        session.ingest(event(&voc, "a", 10));
        session.ingest(event(&voc, "go", 20)); // open 50ns deadline
        let state = session.into_state();
        assert_eq!(state.backend(), Backend::Fused);
        assert_eq!(state.mode(), DispatchMode::Indexed);
        // Resuming under the same engine continues the exact stream:
        // the open deadline still fires, the antecedent still remembers `a`.
        let mut resumed = engine.resume(state).expect("same engine");
        assert_eq!(resumed.stats().events, 2);
        resumed.ingest(event(&voc, "b", 30));
        resumed.ingest(event(&voc, "start", 40));
        assert_eq!(resumed.verdict(0), Verdict::Satisfied);
        resumed.advance_time(SimTime::from_ns(200));
        assert_eq!(resumed.verdict(1), Verdict::Violated);
    }

    #[test]
    fn resume_rejects_states_from_another_engine() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let other = two_property_engine(&mut voc);
        let state = engine.session().into_state();
        // Same shape, different compilation: the monitors belong to
        // `engine`'s programs, so `other` must refuse the state…
        let state = other.resume(state).expect_err("foreign state rejected");
        // …while an engine *clone* (shared fused program) accepts it, as
        // does the original.
        let clone = engine.clone();
        let state = clone
            .resume(state)
            .expect("clone shares identity")
            .into_state();
        assert!(engine.resume(state).is_ok());
    }

    #[test]
    fn recycled_state_equals_fresh_session() {
        let mut voc = Vocabulary::new();
        let engine = two_property_engine(&mut voc);
        let events: Vec<TimedEvent> = [("a", 10), ("go", 20), ("b", 30), ("start", 40)]
            .into_iter()
            .map(|(n, t)| event(&voc, n, t))
            .collect();
        // Dirty a session with a first stream, park it, resume, reset —
        // the recycled session must be observationally a fresh one.
        let mut first = engine.session();
        first.ingest_batch(&events);
        first.close(SimTime::from_ns(100));
        let state = first.into_state();
        let mut recycled = engine.resume(state).expect("same engine");
        recycled.reset();
        let mut fresh = engine.session();
        recycled.ingest_batch(&events);
        fresh.ingest_batch(&events);
        let (a, b) = (
            recycled.finish(SimTime::from_ns(100)),
            fresh.finish(SimTime::from_ns(100)),
        );
        assert_eq!(a.stats, b.stats);
        for (x, y) in a.properties.iter().zip(&b.properties) {
            assert_eq!(x.verdict, y.verdict);
        }
    }
}
