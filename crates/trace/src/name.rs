//! Interned interface names and the vocabulary that owns them.
//!
//! The paper's patterns are written on the vocabulary of the input/output
//! interface `(I, O)` of a component (Section 4). A [`Vocabulary`] interns
//! strings into compact [`Name`] handles and records, for each name, whether
//! it is an input or an output of the monitored component — the grammar's
//! side conditions (`i ∈ I`, `α(Q) ⊆ O`) are checked against this
//! classification.

use std::collections::HashMap;
use std::fmt;

/// Whether an interface name is an input or an output of the monitored
/// component.
///
/// The paper (Section 3): "an input of the IPU is any action of the other
/// components that affects the IPU […]; output is any activity performed by
/// the IPU that affects other components".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// An action of the environment observed by the component (e.g.
    /// `set_imgAddr`, `start`).
    Input,
    /// An activity performed by the component (e.g. `read_img`, `set_irq`).
    Output,
}

impl Direction {
    /// Short lowercase label used by the trace text format.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Input => "in",
            Direction::Output => "out",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A cheap, copyable handle for one interned interface name.
///
/// `Name`s are only meaningful relative to the [`Vocabulary`] that produced
/// them; use [`Vocabulary::resolve`] to get the string back.
///
/// # Example
///
/// ```
/// use lomon_trace::{Direction, Vocabulary};
/// let mut voc = Vocabulary::new();
/// let n = voc.intern("start", Direction::Input);
/// assert_eq!(voc.resolve(n), "start");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(u32);

impl Name {
    /// The dense index of this name inside its vocabulary (0-based intern
    /// order). Useful for index-based lookup tables in monitors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a name from a dense index previously obtained with
    /// [`Name::index`].
    ///
    /// This performs no validation; resolving a fabricated name against the
    /// wrong vocabulary panics.
    pub fn from_index(index: usize) -> Self {
        Name(index as u32)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

/// String interner and input/output classifier for interface names.
///
/// A vocabulary is append-only: interning the same string twice returns the
/// same [`Name`]. Re-interning with a *different* [`Direction`] keeps the
/// original direction (first writer wins) — interfaces do not change
/// direction mid-run — and the mismatch can be detected with
/// [`Vocabulary::direction`].
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    names: Vec<String>,
    directions: Vec<Direction>,
    by_string: HashMap<String, Name>,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text` as a name with the given direction, returning the
    /// existing handle if `text` was interned before.
    pub fn intern(&mut self, text: &str, direction: Direction) -> Name {
        if let Some(&name) = self.by_string.get(text) {
            return name;
        }
        let name = Name(self.names.len() as u32);
        self.names.push(text.to_owned());
        self.directions.push(direction);
        self.by_string.insert(text.to_owned(), name);
        name
    }

    /// Intern an input name (shorthand for [`Vocabulary::intern`] with
    /// [`Direction::Input`]).
    pub fn input(&mut self, text: &str) -> Name {
        self.intern(text, Direction::Input)
    }

    /// Intern an output name (shorthand for [`Vocabulary::intern`] with
    /// [`Direction::Output`]).
    pub fn output(&mut self, text: &str) -> Name {
        self.intern(text, Direction::Output)
    }

    /// Look up a previously interned name without inserting.
    pub fn lookup(&self, text: &str) -> Option<Name> {
        self.by_string.get(text).copied()
    }

    /// The string for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` does not belong to this vocabulary.
    pub fn resolve(&self, name: Name) -> &str {
        &self.names[name.index()]
    }

    /// The direction recorded for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` does not belong to this vocabulary.
    pub fn direction(&self, name: Name) -> Direction {
        self.directions[name.index()]
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all names in intern order.
    pub fn iter(&self) -> impl Iterator<Item = Name> + '_ {
        (0..self.names.len() as u32).map(Name)
    }

    /// Render a name set as `{a, b, c}` (sorted by intern order) for
    /// diagnostics.
    pub fn display_set(&self, set: &NameSet) -> String {
        let mut out = String::from("{");
        for (k, name) in set.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(self.resolve(name));
        }
        out.push('}');
        out
    }
}

/// A set of [`Name`]s backed by a bit vector.
///
/// Monitors consult name sets (the recognition context `B, C, Ac, Af` of the
/// paper's Fig. 5) on every event, so membership must be O(1) and allocation
/// free. Names intern densely from zero, which makes a bitset the natural
/// representation.
///
/// # Example
///
/// ```
/// use lomon_trace::{Direction, NameSet, Vocabulary};
/// let mut voc = Vocabulary::new();
/// let a = voc.input("a");
/// let b = voc.input("b");
/// let mut set = NameSet::new();
/// set.insert(a);
/// assert!(set.contains(a) && !set.contains(b));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct NameSet {
    bits: Vec<u64>,
}

impl NameSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a name. Returns `true` if it was not already present.
    pub fn insert(&mut self, name: Name) -> bool {
        let (word, bit) = (name.index() / 64, name.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let had = self.bits[word] & (1 << bit) != 0;
        self.bits[word] |= 1 << bit;
        !had
    }

    /// Remove a name. Returns `true` if it was present.
    pub fn remove(&mut self, name: Name) -> bool {
        let (word, bit) = (name.index() / 64, name.index() % 64);
        if word >= self.bits.len() {
            return false;
        }
        let had = self.bits[word] & (1 << bit) != 0;
        self.bits[word] &= !(1 << bit);
        had
    }

    /// Membership test.
    pub fn contains(&self, name: Name) -> bool {
        let (word, bit) = (name.index() / 64, name.index() % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of names in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterate over members in increasing intern order.
    pub fn iter(&self) -> impl Iterator<Item = Name> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |bit| {
                if w & (1u64 << bit) != 0 {
                    Some(Name::from_index(wi * 64 + bit))
                } else {
                    None
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NameSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (dst, src) in self.bits.iter_mut().zip(&other.bits) {
            *dst |= src;
        }
    }

    /// Whether `self` and `other` share at least one name.
    pub fn intersects(&self, other: &NameSet) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &NameSet) -> bool {
        self.bits
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.bits.get(i).copied().unwrap_or(0) == 0)
    }
}

impl fmt::Debug for NameSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Name> for NameSet {
    fn from_iter<T: IntoIterator<Item = Name>>(iter: T) -> Self {
        let mut set = NameSet::new();
        for n in iter {
            set.insert(n);
        }
        set
    }
}

impl Extend<Name> for NameSet {
    fn extend<T: IntoIterator<Item = Name>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut voc = Vocabulary::new();
        let a1 = voc.intern("start", Direction::Input);
        let a2 = voc.intern("start", Direction::Input);
        assert_eq!(a1, a2);
        assert_eq!(voc.len(), 1);
    }

    #[test]
    fn first_direction_wins() {
        let mut voc = Vocabulary::new();
        let n = voc.intern("irq", Direction::Output);
        let same = voc.intern("irq", Direction::Input);
        assert_eq!(n, same);
        assert_eq!(voc.direction(n), Direction::Output);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut voc = Vocabulary::new();
        let names: Vec<_> = ["a", "b", "c_long_name"]
            .iter()
            .map(|s| voc.input(s))
            .collect();
        for (i, text) in ["a", "b", "c_long_name"].iter().enumerate() {
            assert_eq!(voc.resolve(names[i]), *text);
            assert_eq!(voc.lookup(text), Some(names[i]));
        }
        assert_eq!(voc.lookup("missing"), None);
    }

    #[test]
    fn name_index_roundtrip() {
        let mut voc = Vocabulary::new();
        let n = voc.input("x");
        assert_eq!(Name::from_index(n.index()), n);
    }

    #[test]
    fn vocabulary_iter_in_order() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let collected: Vec<_> = voc.iter().collect();
        assert_eq!(collected, vec![a, b]);
    }

    #[test]
    fn nameset_insert_contains_remove() {
        let mut voc = Vocabulary::new();
        // Force a second bitset word by interning > 64 names.
        let names: Vec<_> = (0..70).map(|i| voc.input(&format!("n{i}"))).collect();
        let mut set = NameSet::new();
        assert!(set.insert(names[0]));
        assert!(!set.insert(names[0]));
        assert!(set.insert(names[69]));
        assert!(set.contains(names[0]) && set.contains(names[69]));
        assert!(!set.contains(names[1]));
        assert_eq!(set.len(), 2);
        assert!(set.remove(names[0]));
        assert!(!set.remove(names[0]));
        assert!(!set.contains(names[0]));
    }

    #[test]
    fn nameset_iter_sorted() {
        let mut voc = Vocabulary::new();
        let names: Vec<_> = (0..5).map(|i| voc.input(&format!("n{i}"))).collect();
        let set: NameSet = [names[4], names[1], names[2]].into_iter().collect();
        let out: Vec<_> = set.iter().collect();
        assert_eq!(out, vec![names[1], names[2], names[4]]);
    }

    #[test]
    fn nameset_union_and_intersects() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.input("b");
        let c = voc.input("c");
        let mut s1: NameSet = [a].into_iter().collect();
        let s2: NameSet = [b, c].into_iter().collect();
        assert!(!s1.intersects(&s2));
        s1.union_with(&s2);
        assert!(s1.contains(b) && s1.contains(c));
        assert!(s1.intersects(&s2));
        assert!(s2.is_subset(&s1));
        assert!(!s1.is_subset(&s2));
    }

    #[test]
    fn nameset_empty_properties() {
        let set = NameSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.iter().count(), 0);
        let other = NameSet::new();
        assert!(set.is_subset(&other));
        assert!(!set.intersects(&other));
    }

    #[test]
    fn display_set_renders_sorted_names() {
        let mut voc = Vocabulary::new();
        let a = voc.input("alpha");
        let b = voc.input("beta");
        let set: NameSet = [b, a].into_iter().collect();
        assert_eq!(voc.display_set(&set), "{alpha, beta}");
    }
}
