//! VCD (Value Change Dump) export of interface traces.
//!
//! Loose-ordering traces live in an EDA workflow, and the lingua franca for
//! looking at anything over simulated time is a waveform viewer. This
//! module renders a [`Trace`] as an IEEE-1364 VCD file: each interface name
//! becomes a 1-bit wire that pulses for one timestep at each occurrence, so
//! GTKWave & friends display the event stream directly.

use std::fmt::Write as _;

use crate::{Name, Trace, Vocabulary};

/// Render `trace` as a VCD document.
///
/// Every name of `voc` that occurs in the trace becomes a wire; each event
/// is a `1` at its timestamp followed by a `0` one picosecond later (the
/// timescale is 1 ps, matching [`crate::SimTime`]'s resolution).
pub fn write_vcd(trace: &Trace, voc: &Vocabulary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date lomon trace export $end");
    let _ = writeln!(out, "$version lomon 0.1.0 $end");
    let _ = writeln!(out, "$timescale 1 ps $end");
    let _ = writeln!(out, "$scope module interface $end");

    // Only names that actually occur, in intern order; VCD id codes are
    // printable ASCII starting at '!'.
    let mut used: Vec<Name> = Vec::new();
    for event in trace.iter() {
        if !used.contains(&event.name) {
            used.push(event.name);
        }
    }
    used.sort_by_key(|n| n.index());
    let id = |idx: usize| -> char { (b'!' + idx as u8) as char };
    for (idx, &name) in used.iter().enumerate() {
        let _ = writeln!(out, "$var wire 1 {} {} $end", id(idx), voc.resolve(name));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values.
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    for idx in 0..used.len() {
        let _ = writeln!(out, "0{}", id(idx));
    }
    let _ = writeln!(out, "$end");

    // Pulses: group events by timestamp; drop each pulse 1 ps later
    // (events at t and t+1ps merge into a longer pulse, which is fine).
    let mut pending_drop: Vec<(u64, usize)> = Vec::new();
    let mut k = 0;
    let events = trace.events();
    while k < events.len() {
        let t = events[k].time.as_ps();
        // Emit any scheduled falls strictly before t.
        emit_falls(&mut out, &mut pending_drop, t, id);
        let _ = writeln!(out, "#{t}");
        while k < events.len() && events[k].time.as_ps() == t {
            let idx = used
                .iter()
                .position(|&n| n == events[k].name)
                .expect("name collected above");
            let _ = writeln!(out, "1{}", id(idx));
            pending_drop.push((t + 1, idx));
            k += 1;
        }
    }
    emit_falls(&mut out, &mut pending_drop, u64::MAX, id);
    let end = trace.end_time().as_ps();
    let _ = writeln!(out, "#{}", end.max(1));
    out
}

fn emit_falls(
    out: &mut String,
    pending: &mut Vec<(u64, usize)>,
    before: u64,
    id: impl Fn(usize) -> char,
) {
    pending.sort_unstable();
    let mut rest = Vec::new();
    let mut current: Option<u64> = None;
    for &(t, idx) in pending.iter() {
        if t < before {
            if current != Some(t) {
                let _ = writeln!(out, "#{t}");
                current = Some(t);
            }
            let _ = writeln!(out, "0{}", id(idx));
        } else {
            rest.push((t, idx));
        }
    }
    *pending = rest;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    #[test]
    fn vcd_structure() {
        let mut voc = Vocabulary::new();
        let a = voc.input("set_imgAddr");
        let b = voc.output("set_irq");
        let mut trace = Trace::from_pairs([
            (SimTime::from_ns(1), a),
            (SimTime::from_ns(2), b),
            (SimTime::from_ns(2), a),
        ]);
        trace.set_end_time(SimTime::from_ns(5));
        let vcd = write_vcd(&trace, &voc);
        assert!(vcd.contains("$timescale 1 ps $end"));
        assert!(vcd.contains("$var wire 1 ! set_imgAddr $end"));
        assert!(vcd.contains("$var wire 1 \" set_irq $end"));
        assert!(vcd.contains("#1000"));
        assert!(vcd.contains("#2000"));
        // Pulses rise and fall.
        assert!(vcd.contains("1!"));
        assert!(vcd.contains("0!"));
        // End-time marker.
        assert!(vcd.trim_end().ends_with("#5000"));
    }

    #[test]
    fn empty_trace_is_a_valid_header() {
        let voc = Vocabulary::new();
        let vcd = write_vcd(&Trace::new(), &voc);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("#0"));
    }

    #[test]
    fn only_occurring_names_become_wires() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let _unused = voc.input("unused");
        let trace = Trace::from_pairs([(SimTime::from_ns(1), a)]);
        let vcd = write_vcd(&trace, &voc);
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(!vcd.contains("unused"));
    }

    #[test]
    fn same_time_events_share_a_timestamp_line() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.input("b");
        let mut trace = Trace::from_pairs([(SimTime::from_ns(3), a), (SimTime::from_ns(3), b)]);
        trace.set_end_time(SimTime::from_ns(10));
        let vcd = write_vcd(&trace, &voc);
        let stamps: Vec<&str> = vcd.lines().filter(|l| l.starts_with('#')).collect();
        // #0 (init), #3000 (both events), #3001 (falls), #10000 (end).
        assert_eq!(stamps, vec!["#0", "#3000", "#3001", "#10000"]);
    }
}
