//! Oracle equivalence for the streaming engine: for random small property
//! sets and random traces, the engine's per-property verdicts (and
//! violation kinds) must equal what each property's own monitor computes
//! with [`run_to_end`] over the materialized trace — for indexed *and*
//! broadcast dispatch — and indexed dispatch must never perform more
//! monitor steps than broadcast.
//!
//! This is the subsystem-level counterpart of
//! `crates/core/tests/oracle_equivalence.rs`: there the monitors are pitted
//! against the NFA semantics; here the *dispatch layer* is pitted against
//! the monitors themselves.

use proptest::prelude::*;

use lomon_core::ast::{
    Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication,
};
use lomon_core::monitor::build_monitor;
use lomon_core::verdict::{run_to_end, Monitor};
use lomon_core::wf;
use lomon_engine::{Backend, DispatchMode, Engine};
use lomon_trace::{Name, SimTime, Trace, Vocabulary};

const INPUT_POOL: usize = 10;
const OUTPUT_POOL: usize = 6;

/// One random fragment: connective + ranges as `(min, extra)` pairs; names
/// are assigned later from a shared pool.
type FragmentSpec = (bool, Vec<(u32, u32)>);

/// One random property over the shared name pools.
#[derive(Debug, Clone)]
enum PropertySpec {
    Antecedent {
        offset: usize,
        fragments: Vec<FragmentSpec>,
        repeated: bool,
    },
    Timed {
        offset: usize,
        premise: Vec<FragmentSpec>,
        response_offset: usize,
        response: Vec<FragmentSpec>,
        bound_ns: u64,
    },
}

fn fragment_strategy() -> impl Strategy<Value = FragmentSpec> {
    (
        any::<bool>(),
        prop::collection::vec((1u32..=2, 0u32..=1), 1..=2),
    )
}

fn property_strategy() -> impl Strategy<Value = PropertySpec> {
    (
        (
            any::<bool>(),
            0usize..INPUT_POOL,
            prop::collection::vec(fragment_strategy(), 1..=2),
        ),
        (
            any::<bool>(),
            0usize..OUTPUT_POOL,
            prop::collection::vec(fragment_strategy(), 1..=2),
            0usize..3,
        ),
    )
        .prop_map(
            |((timed, offset, fragments), (repeated, response_offset, response, bound_pick))| {
                if timed {
                    PropertySpec::Timed {
                        offset,
                        premise: fragments,
                        response_offset,
                        response,
                        // Small, medium and large budgets: misses, races and
                        // comfortable episodes are all exercised.
                        bound_ns: [30, 150, 1_000][bound_pick],
                    }
                } else {
                    PropertySpec::Antecedent {
                        offset,
                        fragments,
                        repeated,
                    }
                }
            },
        )
}

/// Materialize fragments with consecutive (hence distinct) pool names.
fn build_fragments(
    specs: &[FragmentSpec],
    pool: &[Name],
    offset: usize,
    counter: &mut usize,
) -> Vec<Fragment> {
    specs
        .iter()
        .map(|(any_op, ranges)| {
            let op = if *any_op {
                FragmentOp::Any
            } else {
                FragmentOp::All
            };
            let ranges = ranges
                .iter()
                .map(|&(min, extra)| {
                    let name = pool[(offset + *counter) % pool.len()];
                    *counter += 1;
                    Range::new(name, min, min + extra)
                })
                .collect();
            Fragment::new(op, ranges)
        })
        .collect()
}

fn build_property(spec: &PropertySpec, inputs: &[Name], outputs: &[Name]) -> Property {
    match spec {
        PropertySpec::Antecedent {
            offset,
            fragments,
            repeated,
        } => {
            let mut counter = 0;
            let ordering =
                LooseOrdering::new(build_fragments(fragments, inputs, *offset, &mut counter));
            let trigger = inputs[(offset + counter) % inputs.len()];
            Antecedent::new(ordering, trigger, *repeated).into()
        }
        PropertySpec::Timed {
            offset,
            premise,
            response_offset,
            response,
            bound_ns,
        } => {
            let mut counter = 0;
            let premise =
                LooseOrdering::new(build_fragments(premise, inputs, *offset, &mut counter));
            let mut counter = 0;
            let response = LooseOrdering::new(build_fragments(
                response,
                outputs,
                *response_offset,
                &mut counter,
            ));
            TimedImplication::new(premise, response, SimTime::from_ns(*bound_ns)).into()
        }
    }
}

fn pools(voc: &mut Vocabulary) -> (Vec<Name>, Vec<Name>) {
    let inputs: Vec<Name> = (0..INPUT_POOL)
        .map(|k| voc.input(&format!("n{k}")))
        .collect();
    let outputs: Vec<Name> = (0..OUTPUT_POOL)
        .map(|k| voc.output(&format!("o{k}")))
        .collect();
    (inputs, outputs)
}

/// Build the trace: picks index into the full universe, gaps accumulate.
fn build_trace(steps: &[(usize, u64)], universe: &[Name]) -> Trace {
    let mut trace = Trace::new();
    let mut now = SimTime::ZERO;
    for &(pick, gap_ns) in steps {
        now = now
            .checked_add(SimTime::from_ns(gap_ns))
            .expect("small times");
        trace.push(universe[pick % universe.len()], now);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// ≥ 200 random (property-set, trace) cases: engine == per-property
    /// `run_to_end`, in both dispatch modes.
    #[test]
    fn engine_matches_per_property_run_to_end(
        specs in prop::collection::vec(property_strategy(), 1..=4),
        steps in prop::collection::vec((0usize..16, 0u64..=120), 0..=30),
    ) {
        let mut voc = Vocabulary::new();
        let (inputs, outputs) = pools(&mut voc);
        let properties: Vec<Property> = specs
            .iter()
            .map(|s| build_property(s, &inputs, &outputs))
            .collect();
        prop_assume!(properties
            .iter()
            .all(|p| wf::check(p, &voc).is_empty()));

        let universe: Vec<Name> = voc.iter().collect();
        let trace = build_trace(&steps, &universe);

        // Oracle: each property's own monitor over the whole trace.
        let mut expected = Vec::new();
        for property in &properties {
            let mut monitor =
                build_monitor(property.clone(), &voc).expect("well-formed by construction");
            let verdict = run_to_end(&mut monitor, &trace);
            let kind = monitor.violation().map(|v| v.kind);
            expected.push((verdict, kind));
        }

        // Engine, both modes, fed incrementally.
        let engine = Engine::from_properties(properties, &voc)
            .expect("well-formed by construction");
        let mut reports = Vec::new();
        for mode in [DispatchMode::Indexed, DispatchMode::Broadcast] {
            let mut session = engine.session_with(mode);
            for &event in trace.iter() {
                session.ingest(event);
            }
            reports.push(session.finish(trace.end_time()));
        }

        for report in &reports {
            for (p, (verdict, kind)) in report.properties.iter().zip(&expected) {
                prop_assert_eq!(p.verdict, *verdict);
                prop_assert_eq!(p.violation.as_ref().map(|v| v.kind), *kind);
            }
        }
        // Indexed dispatch never works harder than broadcast.
        prop_assert!(reports[0].stats.monitor_steps <= reports[1].stats.monitor_steps);
        prop_assert_eq!(reports[1].stats.steps_skipped, 0);
    }

    /// Batched ingestion is equivalent to event-by-event ingestion.
    #[test]
    fn batch_matches_event_by_event(
        specs in prop::collection::vec(property_strategy(), 1..=3),
        steps in prop::collection::vec((0usize..16, 0u64..=120), 0..=24),
    ) {
        let mut voc = Vocabulary::new();
        let (inputs, outputs) = pools(&mut voc);
        let properties: Vec<Property> = specs
            .iter()
            .map(|s| build_property(s, &inputs, &outputs))
            .collect();
        prop_assume!(properties
            .iter()
            .all(|p| wf::check(p, &voc).is_empty()));

        let universe: Vec<Name> = voc.iter().collect();
        let trace = build_trace(&steps, &universe);
        let engine = Engine::from_properties(properties, &voc)
            .expect("well-formed by construction");

        let mut one = engine.session();
        for &event in trace.iter() {
            one.ingest(event);
        }
        let mut batched = engine.session();
        batched.ingest_batch(trace.events());

        let (a, b) = (one.finish(trace.end_time()), batched.finish(trace.end_time()));
        for (x, y) in a.properties.iter().zip(&b.properties) {
            prop_assert_eq!(x.verdict, y.verdict);
        }
        prop_assert_eq!(a.stats.events, b.stats.events);
    }

    /// Compiled vs interpreted execution backends, in both dispatch modes:
    /// per-property verdicts, the full violation diagnostics (kind,
    /// triggering event, detection time, detail text, expected set) and the
    /// abstract-operation counters must all agree — the compiled lowering
    /// is required to be *observationally identical* to the tree-walking
    /// interpreter, not merely verdict-equivalent.
    #[test]
    fn compiled_backend_matches_interpreter(
        specs in prop::collection::vec(property_strategy(), 1..=4),
        steps in prop::collection::vec((0usize..16, 0u64..=120), 0..=30),
    ) {
        let mut voc = Vocabulary::new();
        let (inputs, outputs) = pools(&mut voc);
        let properties: Vec<Property> = specs
            .iter()
            .map(|s| build_property(s, &inputs, &outputs))
            .collect();
        prop_assume!(properties
            .iter()
            .all(|p| wf::check(p, &voc).is_empty()));

        let universe: Vec<Name> = voc.iter().collect();
        let trace = build_trace(&steps, &universe);
        let engine = Engine::from_properties(properties, &voc)
            .expect("well-formed by construction");

        for mode in [DispatchMode::Indexed, DispatchMode::Broadcast] {
            let mut interp = engine.session_with_backend(mode, Backend::Interp);
            let mut compiled = engine.session_with_backend(mode, Backend::Compiled);
            for &event in trace.iter() {
                interp.ingest(event);
                compiled.ingest(event);
            }
            let (ri, rc) = (interp.finish(trace.end_time()), compiled.finish(trace.end_time()));
            for id in 0..engine.len() {
                prop_assert_eq!(
                    interp.verdict(id),
                    compiled.verdict(id),
                    "{:?}: verdict of {}", mode, engine.property_display(id)
                );
                prop_assert_eq!(
                    interp.ops(id),
                    compiled.ops(id),
                    "{:?}: ops of {}", mode, engine.property_display(id)
                );
                match (interp.violation(id), compiled.violation(id)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.kind, b.kind);
                        prop_assert_eq!(a.event, b.event);
                        prop_assert_eq!(a.time, b.time);
                        prop_assert_eq!(&a.detail, &b.detail);
                        prop_assert_eq!(
                            a.expected.iter().collect::<Vec<_>>(),
                            b.expected.iter().collect::<Vec<_>>()
                        );
                    }
                    (a, b) => prop_assert!(
                        false,
                        "{:?}: one backend violated {}: interp {:?} vs compiled {:?}",
                        mode, engine.property_display(id), a, b
                    ),
                }
            }
            // The dispatch layer's accounting is backend-independent.
            prop_assert_eq!(ri.stats, rc.stats);
        }
    }

    /// A reset *compiled* session behaves like a fresh one in lockstep with
    /// the interpreter — the `rearm`/arena-reuse fast paths must not leak
    /// any episode state between streams.
    #[test]
    fn compiled_reset_matches_interpreter_reset(
        specs in prop::collection::vec(property_strategy(), 1..=3),
        first in prop::collection::vec((0usize..16, 0u64..=120), 0..=16),
        second in prop::collection::vec((0usize..16, 0u64..=120), 0..=16),
    ) {
        let mut voc = Vocabulary::new();
        let (inputs, outputs) = pools(&mut voc);
        let properties: Vec<Property> = specs
            .iter()
            .map(|s| build_property(s, &inputs, &outputs))
            .collect();
        prop_assume!(properties
            .iter()
            .all(|p| wf::check(p, &voc).is_empty()));

        let universe: Vec<Name> = voc.iter().collect();
        let (t1, t2) = (build_trace(&first, &universe), build_trace(&second, &universe));
        let engine = Engine::from_properties(properties, &voc)
            .expect("well-formed by construction");

        let mut interp = engine.session_with_backend(DispatchMode::Indexed, Backend::Interp);
        let mut compiled = engine.session_with_backend(DispatchMode::Indexed, Backend::Compiled);
        for session in [&mut interp, &mut compiled] {
            session.ingest_batch(t1.events());
            session.finish(t1.end_time());
            session.reset();
            session.ingest_batch(t2.events());
            session.finish(t2.end_time());
        }
        for id in 0..engine.len() {
            prop_assert_eq!(interp.verdict(id), compiled.verdict(id));
            prop_assert_eq!(interp.ops(id), compiled.ops(id));
            prop_assert_eq!(
                interp.violation(id).map(|v| v.kind),
                compiled.violation(id).map(|v| v.kind)
            );
        }
    }

    /// A reset session behaves like a fresh one (allocation reuse across
    /// millions of short streams must not leak verdict state).
    #[test]
    fn reset_session_equals_fresh_session(
        specs in prop::collection::vec(property_strategy(), 1..=3),
        first in prop::collection::vec((0usize..16, 0u64..=120), 0..=16),
        second in prop::collection::vec((0usize..16, 0u64..=120), 0..=16),
    ) {
        let mut voc = Vocabulary::new();
        let (inputs, outputs) = pools(&mut voc);
        let properties: Vec<Property> = specs
            .iter()
            .map(|s| build_property(s, &inputs, &outputs))
            .collect();
        prop_assume!(properties
            .iter()
            .all(|p| wf::check(p, &voc).is_empty()));

        let universe: Vec<Name> = voc.iter().collect();
        let (t1, t2) = (build_trace(&first, &universe), build_trace(&second, &universe));
        let engine = Engine::from_properties(properties, &voc)
            .expect("well-formed by construction");

        // Reused session: stream 1, reset, stream 2.
        let mut reused = engine.session();
        reused.ingest_batch(t1.events());
        reused.finish(t1.end_time());
        reused.reset();
        reused.ingest_batch(t2.events());
        let reused_report = reused.finish(t2.end_time());

        // Fresh session: stream 2 only.
        let mut fresh = engine.session();
        fresh.ingest_batch(t2.events());
        let fresh_report = fresh.finish(t2.end_time());

        for (x, y) in reused_report.properties.iter().zip(&fresh_report.properties) {
            prop_assert_eq!(x.verdict, y.verdict);
        }
        prop_assert_eq!(reused_report.stats, fresh_report.stats);
    }

    /// The fused rulebook backend against both per-property oracles, on
    /// rulebooks built to *overlap*: a handful of base properties over the
    /// shared name pools, sampled **with repetition**, so structurally
    /// identical properties (guaranteed shared groups) and distinct
    /// properties over a shared alphabet both occur. For both dispatch
    /// modes, every property's verdict, full violation diagnostics (kind,
    /// event, time, detail, expected set) and ops counter must agree across
    /// Fused, Compiled and Interp — cross-property cell sharing is required
    /// to be observationally invisible.
    #[test]
    fn fused_backend_matches_oracles_on_overlapping_rulebooks(
        base in prop::collection::vec(property_strategy(), 1..=3),
        picks in prop::collection::vec(0usize..3, 2..=6),
        steps in prop::collection::vec((0usize..16, 0u64..=120), 0..=30),
    ) {
        let mut voc = Vocabulary::new();
        let (inputs, outputs) = pools(&mut voc);
        let properties: Vec<Property> = picks
            .iter()
            .map(|&pick| build_property(&base[pick % base.len()], &inputs, &outputs))
            .collect();
        prop_assume!(properties
            .iter()
            .all(|p| wf::check(p, &voc).is_empty()));

        let universe: Vec<Name> = voc.iter().collect();
        let trace = build_trace(&steps, &universe);
        let engine = Engine::from_properties(properties, &voc)
            .expect("well-formed by construction");
        // Repetition in `picks` must have fused into shared groups.
        let sharing = engine.sharing();
        prop_assert!(sharing.unique_programs <= sharing.properties);
        prop_assert!(sharing.unique_cells <= sharing.total_cells);

        for mode in [DispatchMode::Indexed, DispatchMode::Broadcast] {
            let mut fused = engine.session_with_backend(mode, Backend::Fused);
            let mut compiled = engine.session_with_backend(mode, Backend::Compiled);
            let mut interp = engine.session_with_backend(mode, Backend::Interp);
            for &event in trace.iter() {
                fused.ingest(event);
                compiled.ingest(event);
                interp.ingest(event);
            }
            let rf = fused.finish(trace.end_time());
            let rc = compiled.finish(trace.end_time());
            interp.finish(trace.end_time());
            for id in 0..engine.len() {
                prop_assert_eq!(
                    fused.verdict(id),
                    compiled.verdict(id),
                    "{:?}: verdict of {}", mode, engine.property_display(id)
                );
                prop_assert_eq!(fused.verdict(id), interp.verdict(id));
                prop_assert_eq!(
                    fused.ops(id),
                    compiled.ops(id),
                    "{:?}: ops of {}", mode, engine.property_display(id)
                );
                prop_assert_eq!(fused.ops(id), interp.ops(id));
                match (fused.violation(id), compiled.violation(id)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.kind, b.kind);
                        prop_assert_eq!(a.event, b.event);
                        prop_assert_eq!(a.time, b.time);
                        prop_assert_eq!(&a.detail, &b.detail);
                        prop_assert_eq!(
                            a.expected.iter().collect::<Vec<_>>(),
                            b.expected.iter().collect::<Vec<_>>()
                        );
                    }
                    (a, b) => prop_assert!(
                        false,
                        "{:?}: one backend violated {}: fused {:?} vs compiled {:?}",
                        mode, engine.property_display(id), a, b
                    ),
                }
            }
            // The fused backend serves the same properties with at most as
            // many monitor steps (shared groups step once), and its
            // sharing counters account exactly for the fan-out.
            prop_assert!(rf.stats.monitor_steps <= rc.stats.monitor_steps);
            prop_assert_eq!(rf.stats.events, rc.stats.events);
            prop_assert_eq!(
                rf.stats.monitor_steps + rf.stats.shared_hits + rf.stats.steps_skipped,
                rc.stats.monitor_steps + rc.stats.steps_skipped
            );
            prop_assert_eq!(rc.stats.shared_hits, 0);
        }
    }

    /// A reset *fused* session behaves like a fresh one in lockstep with
    /// the compiled oracle — rewinding the shared group arena must not
    /// leak episode state (deadlines, fragment progress, retirement)
    /// between streams, including across the group→members fan-out.
    #[test]
    fn fused_reset_matches_fresh_and_oracle(
        base in prop::collection::vec(property_strategy(), 1..=2),
        picks in prop::collection::vec(0usize..2, 2..=4),
        first in prop::collection::vec((0usize..16, 0u64..=120), 0..=16),
        second in prop::collection::vec((0usize..16, 0u64..=120), 0..=16),
    ) {
        let mut voc = Vocabulary::new();
        let (inputs, outputs) = pools(&mut voc);
        let properties: Vec<Property> = picks
            .iter()
            .map(|&pick| build_property(&base[pick % base.len()], &inputs, &outputs))
            .collect();
        prop_assume!(properties
            .iter()
            .all(|p| wf::check(p, &voc).is_empty()));

        let universe: Vec<Name> = voc.iter().collect();
        let (t1, t2) = (build_trace(&first, &universe), build_trace(&second, &universe));
        let engine = Engine::from_properties(properties, &voc)
            .expect("well-formed by construction");

        // Reused fused session and a lockstep compiled oracle.
        let mut fused = engine.session_with_backend(DispatchMode::Indexed, Backend::Fused);
        let mut compiled = engine.session_with_backend(DispatchMode::Indexed, Backend::Compiled);
        for session in [&mut fused, &mut compiled] {
            session.ingest_batch(t1.events());
            session.finish(t1.end_time());
            session.reset();
            session.ingest_batch(t2.events());
            session.finish(t2.end_time());
        }
        // Fresh fused session over stream 2 only.
        let mut fresh = engine.session_with_backend(DispatchMode::Indexed, Backend::Fused);
        fresh.ingest_batch(t2.events());
        let fresh_report = fresh.finish(t2.end_time());

        for id in 0..engine.len() {
            prop_assert_eq!(fused.verdict(id), compiled.verdict(id));
            prop_assert_eq!(fused.verdict(id), fresh.verdict(id));
            // Ops accumulate across `reset()` (lifetime instrumentation),
            // so the reused sessions are compared with each other, not
            // with the fresh one.
            prop_assert_eq!(fused.ops(id), compiled.ops(id));
            prop_assert_eq!(
                fused.violation(id).map(|v| v.kind),
                compiled.violation(id).map(|v| v.kind)
            );
        }
        prop_assert_eq!(fused.report().stats, fresh_report.stats);
    }
}
