//! The standard generator: SplitMix64 behind the `StdRng` name.

use crate::{RngCore, SeedableRng};

/// Deterministic seeded generator (stand-in for `rand::rngs::StdRng`).
///
/// One SplitMix64 stream; the 32-byte seed is folded into the 64-bit state
/// so that `from_seed` and `seed_from_u64` agree with each other.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = 0u64;
        for chunk in seed.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state = state.rotate_left(23) ^ u64::from_le_bytes(word);
        }
        StdRng { state }
    }
}
