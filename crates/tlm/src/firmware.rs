//! The embedded software of the case study, as interpretable firmware.
//!
//! "the embedded software controls the face recognition process" (paper,
//! Fig. 2). Modelling the software as *data* — a small instruction list
//! interpreted by the CPU component — makes scenarios and fault injections
//! (skipped register writes, reordered configuration, premature start)
//! declarative: they are program transformations, not code changes.

use lomon_trace::SimTime;

/// A value operand: immediate or CPU register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A constant.
    Imm(u64),
    /// The value of a CPU register.
    Reg(usize),
}

/// One firmware instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Bus write of `value` to `addr`.
    Write {
        /// Global bus address.
        addr: u64,
        /// What to write.
        value: Operand,
    },
    /// Bus read from `addr` into register `reg`.
    Read {
        /// Global bus address.
        addr: u64,
        /// Destination register.
        reg: usize,
    },
    /// Block until an interrupt in `mask` is pending, then acknowledge it.
    WaitIrq {
        /// Bitmask of acceptable interrupt lines.
        mask: u64,
    },
    /// Loosely-timed delay (`wait(lo, hi)`), drawn from the kernel's RNG.
    Delay {
        /// Minimum delay.
        lo: SimTime,
        /// Maximum delay.
        hi: SimTime,
    },
    /// Unconditional jump to an instruction index.
    Goto(usize),
    /// Jump to `target` when register `reg` equals `value`.
    BranchIfEq {
        /// Compared register.
        reg: usize,
        /// Compared value.
        value: u64,
        /// Jump target (instruction index).
        target: usize,
    },
    /// Stop the CPU.
    Halt,
}

/// A firmware program plus a name for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firmware {
    /// Program name (shown in scenario reports).
    pub name: String,
    /// The instruction list.
    pub program: Vec<Instr>,
}

impl Firmware {
    /// Wrap an instruction list.
    pub fn new(name: impl Into<String>, program: Vec<Instr>) -> Self {
        Firmware {
            name: name.into(),
            program,
        }
    }

    /// Validate jump targets and register indices.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed instruction.
    pub fn validate(&self, register_count: usize) -> Result<(), String> {
        for (pc, instr) in self.program.iter().enumerate() {
            let check_target = |t: usize| {
                if t >= self.program.len() {
                    Err(format!("instruction {pc}: jump target {t} out of range"))
                } else {
                    Ok(())
                }
            };
            match instr {
                Instr::Goto(t) => check_target(*t)?,
                Instr::BranchIfEq { target, reg, .. } => {
                    check_target(*target)?;
                    if *reg >= register_count {
                        return Err(format!("instruction {pc}: register r{reg} out of range"));
                    }
                }
                Instr::Read { reg, .. } if *reg >= register_count => {
                    return Err(format!("instruction {pc}: register r{reg} out of range"));
                }
                Instr::Write {
                    value: Operand::Reg(reg),
                    ..
                } if *reg >= register_count => {
                    return Err(format!("instruction {pc}: register r{reg} out of range"));
                }
                Instr::Delay { lo, hi } if lo > hi => {
                    return Err(format!("instruction {pc}: empty delay interval"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_well_formed_programs() {
        let fw = Firmware::new(
            "ok",
            vec![
                Instr::Write {
                    addr: 0x10,
                    value: Operand::Imm(1),
                },
                Instr::Read { addr: 0x10, reg: 0 },
                Instr::BranchIfEq {
                    reg: 0,
                    value: 1,
                    target: 0,
                },
                Instr::Halt,
            ],
        );
        assert_eq!(fw.validate(4), Ok(()));
    }

    #[test]
    fn validation_rejects_bad_targets_and_registers() {
        let fw = Firmware::new("bad-jump", vec![Instr::Goto(7)]);
        assert!(fw.validate(4).unwrap_err().contains("jump target"));

        let fw = Firmware::new("bad-reg", vec![Instr::Read { addr: 0, reg: 9 }]);
        assert!(fw.validate(4).unwrap_err().contains("register"));

        let fw = Firmware::new(
            "bad-delay",
            vec![Instr::Delay {
                lo: SimTime::from_ns(5),
                hi: SimTime::from_ns(1),
            }],
        );
        assert!(fw.validate(4).unwrap_err().contains("delay"));

        let fw = Firmware::new(
            "bad-write-reg",
            vec![Instr::Write {
                addr: 0,
                value: Operand::Reg(9),
            }],
        );
        assert!(fw.validate(4).unwrap_err().contains("register"));
    }
}
