//! Reference semantics: patterns as finite automata.
//!
//! The monitors in [`crate::recognizer`]/[`crate::compose`] are efficient
//! but intricate; this module gives loose-ordering patterns an *independent*
//! denotational semantics — a plain nondeterministic finite automaton built
//! compositionally from Definitions 1–5 — used as the ground-truth oracle in
//! unit and property tests (playing the role SPOT and the Lustre testing
//! tools play in the paper).
//!
//! The reference languages (over the projected alphabet `α`):
//!
//! * range `n[u,v]` — `{ nᵏ | u ≤ k ≤ v }`;
//! * fragment `({R1..Rk}, ∧)` — all permutations of all blocks, concatenated;
//! * fragment `({R1..Rk}, ∨)` — all permutations of every non-empty subset;
//! * loose-ordering `F1 < … < Fq` — the concatenation in order;
//! * antecedent `(P << i, true)` — prefixes of `(L(P)·i)*`;
//! * antecedent `(P << i, false)` — prefixes of `L(P)·i·α*`;
//! * timed implication (untimed projection) — prefixes of `(L(P)·L(Q))*`.
//!
//! Permutation-based fragment construction is exponential in the number of
//! ranges per fragment; that is fine for an oracle (tests use ≤ 5 ranges)
//! and is precisely the blow-up the paper's direct monitors avoid.

use std::collections::HashSet;

use lomon_trace::{Name, NameSet, Trace};

use crate::ast::{Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range};

/// A nondeterministic finite automaton with ε-transitions over [`Name`]s.
///
/// All states are co-accessible by construction (every constructor keeps a
/// path from every state to an accepting state), so *prefix membership*
/// is simply "the live set is non-empty".
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `transitions[s]` = list of `(label, target)`; `None` = ε.
    transitions: Vec<Vec<(Option<Name>, usize)>>,
    start: Vec<usize>,
    accepting: Vec<bool>,
}

impl Nfa {
    fn empty_word() -> Self {
        Nfa {
            transitions: vec![Vec::new()],
            start: vec![0],
            accepting: vec![true],
        }
    }

    /// The automaton of a single range `n[u,v]`.
    pub fn range(range: &Range) -> Self {
        let v = range.max as usize;
        let u = range.min as usize;
        let mut transitions = vec![Vec::new(); v + 1];
        let mut accepting = vec![false; v + 1];
        for (k, t) in transitions.iter_mut().enumerate().take(v) {
            t.push((Some(range.name), k + 1));
        }
        for (k, acc) in accepting.iter_mut().enumerate() {
            *acc = k >= u;
        }
        Nfa {
            transitions,
            start: vec![0],
            accepting,
        }
    }

    /// `L(self)·L(other)`.
    pub fn concat(mut self, other: &Nfa) -> Self {
        let offset = self.transitions.len();
        for row in &other.transitions {
            self.transitions
                .push(row.iter().map(|&(l, t)| (l, t + offset)).collect());
        }
        for (s, acc) in self.accepting.iter().enumerate().take(offset) {
            if *acc {
                for &b0 in &other.start {
                    self.transitions[s].push((None, b0 + offset));
                }
            }
        }
        for acc in self.accepting.iter_mut().take(offset) {
            *acc = false;
        }
        self.accepting.extend(other.accepting.iter().copied());
        self
    }

    /// `L(self) ∪ L(other)`.
    pub fn union(mut self, other: &Nfa) -> Self {
        let offset = self.transitions.len();
        for row in &other.transitions {
            self.transitions
                .push(row.iter().map(|&(l, t)| (l, t + offset)).collect());
        }
        self.accepting.extend(other.accepting.iter().copied());
        self.start.extend(other.start.iter().map(|&s| s + offset));
        self
    }

    /// `L(self)*` (Kleene star).
    pub fn star(mut self) -> Self {
        let hub = self.transitions.len();
        self.transitions.push(Vec::new());
        self.accepting.push(true);
        for &s in &self.start.clone() {
            self.transitions[hub].push((None, s));
        }
        for s in 0..hub {
            if self.accepting[s] {
                self.transitions[s].push((None, hub));
            }
        }
        self.start = vec![hub];
        self
    }

    /// The single-word automaton for one name.
    pub fn symbol(name: Name) -> Self {
        Nfa {
            transitions: vec![vec![(Some(name), 1)], Vec::new()],
            start: vec![0],
            accepting: vec![false, true],
        }
    }

    /// `Σ*` over the given alphabet.
    pub fn sigma_star(alphabet: &NameSet) -> Self {
        let mut transitions = vec![Vec::new()];
        for name in alphabet.iter() {
            transitions[0].push((Some(name), 0));
        }
        Nfa {
            transitions,
            start: vec![0],
            accepting: vec![true],
        }
    }

    /// Number of states (oracle-size sanity checks).
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    fn closure(&self, set: &mut HashSet<usize>) {
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &(label, t) in &self.transitions[s] {
                if label.is_none() && set.insert(t) {
                    stack.push(t);
                }
            }
        }
    }

    /// The live state set after consuming `word` from the start set, or
    /// `None` as soon as it becomes empty (the word is not a prefix of any
    /// accepted word).
    fn run<'a, I: IntoIterator<Item = &'a Name>>(&self, word: I) -> Option<HashSet<usize>> {
        let mut set: HashSet<usize> = self.start.iter().copied().collect();
        self.closure(&mut set);
        for &name in word {
            let mut next = HashSet::new();
            for &s in &set {
                for &(label, t) in &self.transitions[s] {
                    if label == Some(name) {
                        next.insert(t);
                    }
                }
            }
            if next.is_empty() {
                return None;
            }
            self.closure(&mut next);
            set = next;
        }
        Some(set)
    }

    /// Whether `word` is a member of the language.
    pub fn accepts<'a, I: IntoIterator<Item = &'a Name>>(&self, word: I) -> bool {
        match self.run(word) {
            Some(set) => set.iter().any(|&s| self.accepting[s]),
            None => false,
        }
    }

    /// Whether `word` is a prefix of some member (all states co-accessible,
    /// so "still alive" suffices).
    pub fn accepts_prefix<'a, I: IntoIterator<Item = &'a Name>>(&self, word: I) -> bool {
        self.run(word).is_some()
    }

    /// Index of the first event at which the run dies, if it does.
    pub fn first_rejection(&self, word: &[Name]) -> Option<usize> {
        for k in 1..=word.len() {
            if !self.accepts_prefix(&word[..k]) {
                return Some(k - 1);
            }
        }
        None
    }
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for rest in permutations(k - 1) {
        for slot in 0..=rest.len() {
            let mut perm = rest.clone();
            perm.insert(slot, k - 1);
            out.push(perm);
        }
    }
    out
}

/// The automaton of a fragment (Definition 2) — permutations of all blocks
/// for `∧`, of every non-empty subset for `∨`.
pub fn fragment_nfa(fragment: &Fragment) -> Nfa {
    let blocks: Vec<Nfa> = fragment.ranges.iter().map(Nfa::range).collect();
    let k = blocks.len();
    let subsets: Vec<Vec<usize>> = match fragment.op {
        FragmentOp::All => vec![(0..k).collect()],
        FragmentOp::Any => (1u32..(1 << k))
            .map(|mask| (0..k).filter(|&b| mask & (1 << b) != 0).collect())
            .collect(),
    };
    let mut result: Option<Nfa> = None;
    for subset in subsets {
        for perm in permutations(subset.len()) {
            let mut seq = Nfa::empty_word();
            for &slot in &perm {
                seq = seq.concat(&blocks[subset[slot]]);
            }
            result = Some(match result {
                Some(acc) => acc.union(&seq),
                None => seq,
            });
        }
    }
    result.expect("fragment has at least one range")
}

/// The automaton of a loose-ordering (Definition 3).
pub fn ordering_nfa(ordering: &LooseOrdering) -> Nfa {
    let mut result = Nfa::empty_word();
    for fragment in &ordering.fragments {
        result = result.concat(&fragment_nfa(fragment));
    }
    result
}

/// The prefix-language automaton of a root property (untimed projection for
/// timed implications).
pub fn property_nfa(property: &Property) -> Nfa {
    match property {
        Property::Antecedent(a) => antecedent_nfa(a),
        Property::Timed(t) => {
            let p = ordering_nfa(&t.premise);
            let q = ordering_nfa(&t.response);
            p.concat(&q).star()
        }
    }
}

fn antecedent_nfa(a: &Antecedent) -> Nfa {
    let p = ordering_nfa(&a.antecedent);
    let episode = p.concat(&Nfa::symbol(a.trigger));
    if a.repeated {
        episode.star()
    } else {
        episode.concat(&Nfa::sigma_star(&a.alpha()))
    }
}

/// Ground-truth oracle for a property's *untimed* acceptance.
#[derive(Debug, Clone)]
pub struct PatternOracle {
    nfa: Nfa,
    alphabet: NameSet,
}

impl PatternOracle {
    /// Build the oracle of a (well-formed) property.
    pub fn new(property: &Property) -> Self {
        PatternOracle {
            nfa: property_nfa(property),
            alphabet: property.alpha(),
        }
    }

    /// The underlying automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Project a trace onto the property alphabet and report whether every
    /// prefix is acceptable; on rejection, returns the index (within the
    /// *projected* event sequence) of the offending event.
    pub fn check(&self, trace: &Trace) -> Result<(), usize> {
        let word: Vec<Name> = trace
            .names()
            .filter(|n| self.alphabet.contains(*n))
            .collect();
        match self.nfa.first_rejection(&word) {
            None => Ok(()),
            Some(k) => Err(k),
        }
    }

    /// Whether the projected trace is a *full member* of the language
    /// (used e.g. to decide `Satisfied` for one-shot antecedents).
    pub fn accepts_full(&self, trace: &Trace) -> bool {
        let word: Vec<Name> = trace
            .names()
            .filter(|n| self.alphabet.contains(*n))
            .collect();
        self.nfa.accepts(word.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_trace::Vocabulary;

    fn names(voc: &mut Vocabulary, k: usize) -> Vec<Name> {
        (0..k).map(|i| voc.input(&format!("n{i}"))).collect()
    }

    #[test]
    fn range_language() {
        let mut voc = Vocabulary::new();
        let n = names(&mut voc, 1)[0];
        let nfa = Nfa::range(&Range::new(n, 2, 4));
        assert!(!nfa.accepts([&n]));
        assert!(nfa.accepts([&n, &n]));
        assert!(nfa.accepts([&n, &n, &n, &n]));
        assert!(!nfa.accepts([&n, &n, &n, &n, &n]));
        assert!(nfa.accepts_prefix([&n]));
        assert!(!nfa.accepts_prefix([&n, &n, &n, &n, &n]));
    }

    #[test]
    fn example1_loose_ordering() {
        // Paper Example 1: ℓ = n1[2,8] < ({n2, n3}, ∨).
        let mut voc = Vocabulary::new();
        let ns = names(&mut voc, 4);
        let (n1, n2, n3) = (ns[1], ns[2], ns[3]);
        let ordering = LooseOrdering::new(vec![
            Fragment::singleton(Range::new(n1, 2, 8)),
            Fragment::new(FragmentOp::Any, vec![Range::once(n2), Range::once(n3)]),
        ]);
        let nfa = ordering_nfa(&ordering);
        // "first several n1 in a row, then either n2 or n3, or both in any
        // order".
        assert!(nfa.accepts([&n1, &n1, &n2]));
        assert!(nfa.accepts([&n1, &n1, &n3]));
        assert!(nfa.accepts([&n1, &n1, &n2, &n3]));
        assert!(nfa.accepts([&n1, &n1, &n3, &n2]));
        assert!(!nfa.accepts([&n1, &n2])); // only one n1
        assert!(!nfa.accepts([&n1, &n1])); // second fragment missing
        assert!(!nfa.accepts([&n2, &n1, &n1])); // wrong order
    }

    #[test]
    fn all_fragment_permutations() {
        let mut voc = Vocabulary::new();
        let ns = names(&mut voc, 3);
        let f = Fragment::new(
            FragmentOp::All,
            vec![Range::once(ns[0]), Range::once(ns[1]), Range::once(ns[2])],
        );
        let nfa = fragment_nfa(&f);
        for perm in [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let word: Vec<&Name> = perm.iter().map(|&k| &ns[k]).collect();
            assert!(nfa.accepts(word), "perm {perm:?}");
        }
        assert!(!nfa.accepts([&ns[0], &ns[1]])); // incomplete
        assert!(!nfa.accepts([&ns[0], &ns[0], &ns[1], &ns[2]])); // repeat
    }

    #[test]
    fn any_fragment_subsets() {
        let mut voc = Vocabulary::new();
        let ns = names(&mut voc, 2);
        let f = Fragment::new(
            FragmentOp::Any,
            vec![Range::once(ns[0]), Range::once(ns[1])],
        );
        let nfa = fragment_nfa(&f);
        assert!(nfa.accepts([&ns[0]]));
        assert!(nfa.accepts([&ns[1]]));
        assert!(nfa.accepts([&ns[0], &ns[1]]));
        assert!(nfa.accepts([&ns[1], &ns[0]]));
        assert!(!nfa.accepts::<[&Name; 0]>([])); // non-empty subset required
    }

    #[test]
    fn repeated_antecedent_language() {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let i = voc.input("i");
        let prop: Property = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(n))]),
            i,
            true,
        )
        .into();
        let nfa = property_nfa(&prop);
        assert!(nfa.accepts([&n, &i, &n, &i]));
        assert!(nfa.accepts_prefix([&n, &i, &n]));
        assert!(!nfa.accepts_prefix([&n, &i, &i]));
        assert!(!nfa.accepts_prefix([&i]));
    }

    #[test]
    fn oneshot_antecedent_language() {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let i = voc.input("i");
        let prop: Property = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(n))]),
            i,
            false,
        )
        .into();
        let nfa = property_nfa(&prop);
        // After n·i anything over {n, i} goes.
        assert!(nfa.accepts([&n, &i, &i, &i, &n, &n]));
        assert!(!nfa.accepts_prefix([&i]));
        assert!(nfa.accepts_prefix([&n])); // prefix of n·i·…
        assert!(!nfa.accepts([&n])); // but not a full member
    }

    #[test]
    fn timed_untimed_projection_cycles() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let prop: Property = crate::ast::TimedImplication::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]),
            LooseOrdering::new(vec![Fragment::singleton(Range::once(b))]),
            lomon_trace::SimTime::from_ns(1),
        )
        .into();
        let nfa = property_nfa(&prop);
        assert!(nfa.accepts([&a, &b, &a, &b]));
        assert!(nfa.accepts_prefix([&a, &b, &a]));
        assert!(!nfa.accepts_prefix([&b]));
        assert!(!nfa.accepts_prefix([&a, &b, &b]));
    }

    #[test]
    fn oracle_projects_and_localizes_rejection() {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let i = voc.input("i");
        let other = voc.input("other");
        let prop: Property = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::once(n))]),
            i,
            true,
        )
        .into();
        let oracle = PatternOracle::new(&prop);
        let good = Trace::from_names([other, n, other, i]);
        assert_eq!(oracle.check(&good), Ok(()));
        let bad = Trace::from_names([other, i, n]);
        // Projected word is [i, n]; i at projected index 0 kills it.
        assert_eq!(oracle.check(&bad), Err(0));
        assert!(!oracle.accepts_full(&bad));
    }

    #[test]
    fn first_rejection_index() {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let i = voc.input("i");
        let prop: Property = Antecedent::new(
            LooseOrdering::new(vec![Fragment::singleton(Range::new(n, 1, 2))]),
            i,
            true,
        )
        .into();
        let nfa = property_nfa(&prop);
        assert_eq!(nfa.first_rejection(&[n, n, n]), Some(2));
        assert_eq!(nfa.first_rejection(&[n, i, n, i]), None);
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    #[test]
    fn state_count_is_reported() {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let nfa = Nfa::range(&Range::new(n, 1, 5));
        assert_eq!(nfa.state_count(), 6);
    }
}
