//! The stand-in harness must actually run cases, report failures, and give
//! up on unsatisfiable assumptions — a silent no-op harness would fake green
//! across the whole workspace.

use std::sync::atomic::{AtomicU32, Ordering};

use proptest::prelude::*;

static COUNT: AtomicU32 = AtomicU32::new(0);

// No `#[test]` here: invoked exactly once, below, so the case count is exact.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]
    fn counts_cases(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 3)) {
        COUNT.fetch_add(1, Ordering::SeqCst);
        prop_assert!(x < 10);
        prop_assert_eq!(v.len(), 3);
    }
}

#[test]
fn case_count_reached() {
    counts_cases();
    assert_eq!(COUNT.load(Ordering::SeqCst), 100);
}

proptest! {
    #[test]
    #[should_panic]
    fn fails_loudly(x in 0u32..100) {
        prop_assert!(x < 50, "x was {}", x);
    }

    #[test]
    #[should_panic]
    fn assume_exhaustion_panics(x in 0u32..100) {
        prop_assume!(x > 1000);
    }

    /// Range, inclusive-range, tuple and mapped strategies all stay in
    /// bounds.
    #[test]
    fn strategies_respect_bounds(
        a in 5u8..9,
        b in 3u16..=3,
        (c, d) in (0i32..10, any::<bool>()),
        e in (0u64..4).prop_map(|x| x * 2),
        sizes in prop::collection::vec(0usize..5, 2..7),
    ) {
        prop_assert!((5..9).contains(&a));
        prop_assert_eq!(b, 3);
        prop_assert!(if d { c < 10 } else { c >= 0 });
        prop_assert!(e % 2 == 0 && e <= 6);
        prop_assert!((2..7).contains(&sizes.len()));
        prop_assert!(sizes.iter().all(|&s| s < 5));
    }
}
