//! Vendored, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace cannot pull
//! the real `proptest` from crates.io. This crate implements the subset the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   inner attribute and `arg in strategy` parameter lists;
//! * [`strategy::Strategy`] with `prop_map`, range strategies over the
//!   integer primitives, tuple strategies up to arity 6, and
//!   [`collection::vec`] with fixed, exclusive-range or inclusive-range
//!   sizes;
//! * [`arbitrary::any`] for the primitive types;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from the real crate: generation is a fixed-seed deterministic
//! stream (override with `PROPTEST_SEED=<u64>`), there is **no shrinking** —
//! a failure reports the seed and case number so the exact case can be
//! replayed — and rejection sampling via `prop_assume!` aborts after a
//! global cap like the original.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// The body of one generated test case: `Ok(())`, a failed `prop_assert!`,
/// or a rejected `prop_assume!`.
pub type TestCaseResult = Result<(), test_runner::TestCaseError>;

/// Define property tests: each `fn` is expanded into a `#[test]` that runs
/// the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(|__proptest_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&$strategy, __proptest_rng);)+
                let __proptest_outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                __proptest_outcome
            });
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    // No `format!` here: the stringified condition may itself contain
    // braces, which a format string would misparse.
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
