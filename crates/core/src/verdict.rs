//! Verdicts, violation diagnostics and the monitor interface.

use crate::witness::Witness;
use lomon_trace::{Name, NameSet, SimTime, TimedEvent, Vocabulary};

/// The four-valued verdict of a monitor over the trace observed so far.
///
/// Loose-ordering properties are safety(-with-deadline) properties, so the
/// interesting verdicts are "violated" and "fine so far"; the two refined
/// positive values distinguish whether an obligation is still open:
///
/// * [`Verdict::Satisfied`] — irrevocably satisfied; no extension of the
///   trace can violate the property (e.g. a one-shot antecedent after its
///   first validated trigger).
/// * [`Verdict::PresumablySatisfied`] — consistent so far, no open
///   obligation (e.g. between episodes).
/// * [`Verdict::Pending`] — consistent so far but an obligation is open
///   (e.g. `Q` not yet finished, deadline not yet expired); at end of
///   observation this is the "inconclusive" outcome.
/// * [`Verdict::Violated`] — irrevocably violated; diagnostics are
///   available from the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Irrevocably satisfied.
    Satisfied,
    /// Consistent, nothing pending.
    PresumablySatisfied,
    /// Consistent, an obligation is open.
    Pending,
    /// Irrevocably violated.
    Violated,
}

impl Verdict {
    /// Whether the verdict can still change as more events are observed.
    pub fn is_final(self) -> bool {
        matches!(self, Verdict::Satisfied | Verdict::Violated)
    }

    /// Whether the trace observed so far is acceptable (anything but
    /// [`Verdict::Violated`]).
    pub fn is_ok(self) -> bool {
        self != Verdict::Violated
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            Verdict::Satisfied => "satisfied",
            Verdict::PresumablySatisfied => "presumably satisfied",
            Verdict::Pending => "pending",
            Verdict::Violated => "violated",
        };
        f.write_str(text)
    }
}

/// Why a monitor rejected the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A name of a preceding fragment re-occurred (`B` in Fig. 5).
    BeforeName,
    /// A name that must come strictly later occurred (`Af` in Fig. 5) —
    /// including the antecedent's trigger `i` arriving before `P` is
    /// complete (the *BeforeI* obligation).
    AfterName,
    /// A stopping name arrived while a range was below its minimum, or
    /// while a required range had not appeared at all.
    PrematureStop,
    /// A sibling range interrupted this range below its minimum count.
    PrematureInterrupt,
    /// The range's name occurred more than `v` times in a row.
    TooMany,
    /// The range's name re-occurred after its block had already closed
    /// (each range contributes one contiguous block).
    BlockSplit,
    /// A required range of an `∧`-fragment never appeared.
    MissingRange,
    /// `Q` did not finish within `t` of the end of `P`.
    DeadlineMiss,
    /// Observation ended while a deadline had already expired.
    DeadlineExpiredAtEnd,
}

impl ViolationKind {
    /// Short human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            ViolationKind::BeforeName => "name of an already-completed fragment re-occurred",
            ViolationKind::AfterName => "name occurred before its turn",
            ViolationKind::PrematureStop => "fragment stopped before a range reached its minimum",
            ViolationKind::PrematureInterrupt => "range interrupted below its minimum count",
            ViolationKind::TooMany => "range exceeded its maximum count",
            ViolationKind::BlockSplit => "range re-started after its block had closed",
            ViolationKind::MissingRange => "a required range never occurred",
            ViolationKind::DeadlineMiss => "response finished after the deadline",
            ViolationKind::DeadlineExpiredAtEnd => "deadline expired before end of observation",
        }
    }
}

/// The range spec `n[u,v]` of the deadline cell whose obligation was
/// still open when a deadline violation fired — names *what* the monitor
/// was waiting for, not just *when* it gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Obligation {
    /// The awaited interface name.
    pub name: Name,
    /// The range's minimum occurrence count.
    pub min: u32,
    /// The range's maximum occurrence count.
    pub max: u32,
}

impl Obligation {
    /// Render as `` `name`[u,v] ``, resolving the name against `voc`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        format!("`{}`[{},{}]", voc.resolve(self.name), self.min, self.max)
    }
}

/// A violation report: what happened, when, and what would have been
/// acceptable instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The classification of the failure.
    pub kind: ViolationKind,
    /// The event that triggered the violation, if one did (deadline
    /// violations found at end of observation have none).
    pub event: Option<TimedEvent>,
    /// Simulated time of detection.
    pub time: SimTime,
    /// The names that *would* have been acceptable at that point.
    pub expected: NameSet,
    /// Free-form context (which fragment/range, counter values, deadline).
    pub detail: String,
    /// For deadline violations, the originating deadline cell's spec —
    /// the obligation that was still open (or that completed too late).
    pub obligation: Option<Obligation>,
}

impl Violation {
    /// Render a full diagnostic line, resolving names against `voc`.
    pub fn display(&self, voc: &Vocabulary) -> String {
        let what = match self.event {
            Some(ev) => format!("`{}` at {}", voc.resolve(ev.name), ev.time),
            None => format!("end of observation at {}", self.time),
        };
        let mut out = format!(
            "{}: {} — {}; expected one of {}",
            what,
            self.kind.describe(),
            self.detail,
            voc.display_set(&self.expected)
        );
        if let Some(ob) = self.obligation {
            out.push_str("; open obligation ");
            out.push_str(&ob.display(voc));
        }
        out
    }
}

/// The interface every property monitor implements.
///
/// A monitor consumes timed events (in non-decreasing time order) and keeps
/// a latched [`Verdict`]: once final, further observations do not change it.
/// Events whose name is outside the property's alphabet are ignored, per the
/// paper's projection semantics.
pub trait Monitor {
    /// Feed one event; returns the verdict after it.
    fn observe(&mut self, event: TimedEvent) -> Verdict;

    /// Notify the monitor that simulated time has advanced to `now` with no
    /// new event — lets timed monitors detect expired deadlines online.
    /// Untimed monitors ignore it.
    fn advance_time(&mut self, now: SimTime) -> Verdict {
        let _ = now;
        self.verdict()
    }

    /// Declare end of observation at `end_time` and return the final
    /// verdict.
    fn finish(&mut self, end_time: SimTime) -> Verdict;

    /// The current verdict.
    fn verdict(&self) -> Verdict;

    /// The property's alphabet `α`; events outside it are ignored.
    fn alphabet(&self) -> &NameSet;

    /// The names that would be acceptable as the next event (diagnostic;
    /// meaningful while the verdict is not final).
    fn expected(&self) -> NameSet;

    /// The violation report, if the verdict is [`Verdict::Violated`].
    fn violation(&self) -> Option<&Violation>;

    /// If an obligation with a deadline is open, the absolute time it
    /// expires — the simulation kernel uses this to schedule timeout checks.
    fn deadline(&self) -> Option<SimTime> {
        None
    }

    /// Reset to the initial state (a fresh activation).
    fn reset(&mut self);

    /// Instrumentation: abstract operations executed so far (see
    /// `lomon_core::complexity` for the counting discipline).
    fn ops(&self) -> u64;

    /// Instrumentation: bits of mutable monitor state.
    fn state_bits(&self) -> u64;

    /// Attach a flight recorder of at most `capacity` contributing steps
    /// (explain mode); `capacity == 0` detaches it. Off by default, and a
    /// no-op for monitors without witness support.
    fn set_explain(&mut self, capacity: usize) {
        let _ = capacity;
    }

    /// The recorded witness chain, if explain mode is attached.
    fn witness(&self) -> Option<Witness> {
        None
    }
}

/// Convenience: run a monitor over a whole trace (projection included) and
/// return the final verdict, using the trace's end time for the final
/// deadline check.
pub fn run_to_end<M: Monitor + ?Sized>(monitor: &mut M, trace: &lomon_trace::Trace) -> Verdict {
    for &event in trace.iter() {
        monitor.observe(event);
    }
    monitor.finish(trace.end_time())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_finality() {
        assert!(Verdict::Satisfied.is_final());
        assert!(Verdict::Violated.is_final());
        assert!(!Verdict::Pending.is_final());
        assert!(!Verdict::PresumablySatisfied.is_final());
    }

    #[test]
    fn verdict_ok() {
        assert!(Verdict::Satisfied.is_ok());
        assert!(Verdict::Pending.is_ok());
        assert!(!Verdict::Violated.is_ok());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Pending.to_string(), "pending");
        assert_eq!(Verdict::Violated.to_string(), "violated");
    }

    #[test]
    fn violation_display_with_event() {
        let mut voc = Vocabulary::new();
        let n = voc.input("start");
        let exp = voc.input("set_addr");
        let v = Violation {
            kind: ViolationKind::AfterName,
            event: Some(TimedEvent::new(n, SimTime::from_ns(7))),
            time: SimTime::from_ns(7),
            expected: [exp].into_iter().collect(),
            detail: "fragment 1 of P incomplete".into(),
            obligation: None,
        };
        let text = v.display(&voc);
        assert!(text.contains("`start` at 7ns"));
        assert!(text.contains("before its turn"));
        assert!(text.contains("{set_addr}"));
    }

    #[test]
    fn violation_display_without_event() {
        let voc = Vocabulary::new();
        let v = Violation {
            kind: ViolationKind::DeadlineExpiredAtEnd,
            event: None,
            time: SimTime::from_us(3),
            expected: NameSet::new(),
            detail: "deadline was 2us".into(),
            obligation: None,
        };
        let text = v.display(&voc);
        assert!(text.contains("end of observation at 3us"));
        assert!(!text.contains("open obligation"));
    }

    #[test]
    fn violation_display_with_obligation() {
        let mut voc = Vocabulary::new();
        let irq = voc.output("irq");
        let v = Violation {
            kind: ViolationKind::DeadlineMiss,
            event: None,
            time: SimTime::from_us(3),
            expected: NameSet::new(),
            detail: "deadline was 2us".into(),
            obligation: Some(Obligation {
                name: irq,
                min: 1,
                max: 1,
            }),
        };
        let text = v.display(&voc);
        assert!(text.contains("end of observation at 3us"));
        assert!(text.ends_with("; open obligation `irq`[1,1]"));
    }
}
