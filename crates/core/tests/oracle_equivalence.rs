//! Property-based equivalence: the direct (Drct) monitors against the
//! independent NFA reference semantics, on randomly generated patterns and
//! traces.
//!
//! This reproduces the paper's validation methodology ("programmed in
//! Lustre; … check their correctness with respect to the intuitive
//! semantics … using automatic testing tools") with proptest as the
//! automatic testing tool and `lomon_core::semantics` as the intuitive
//! semantics.

use proptest::prelude::*;

use lomon_core::ast::{
    Antecedent, Fragment, FragmentOp, LooseOrdering, Property, Range, TimedImplication,
};
use lomon_core::monitor::build_monitor;
use lomon_core::semantics::PatternOracle;
use lomon_core::verdict::{Monitor, Verdict};
use lomon_core::wf;
use lomon_trace::{Name, SimTime, Trace, Vocabulary};

/// A compact, vocabulary-independent description of a random pattern.
#[derive(Debug, Clone)]
struct PatternSpec {
    /// Per fragment: the connective and the ranges as (name idx, u, extra).
    fragments: Vec<(bool, Vec<(u32, u32)>)>,
    repeated: bool,
}

fn fragment_strategy(max_ranges: usize) -> impl Strategy<Value = (bool, Vec<(u32, u32)>)> {
    (
        any::<bool>(),
        prop::collection::vec((1u32..=3, 0u32..=2), 1..=max_ranges),
    )
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    (
        prop::collection::vec(fragment_strategy(3), 1..=3),
        any::<bool>(),
    )
        .prop_map(|(fragments, repeated)| PatternSpec {
            fragments,
            repeated,
        })
}

/// Materialize a spec: names are distributed across fragments so the
/// disjointness side conditions hold by construction.
fn build_ordering(
    spec: &[(bool, Vec<(u32, u32)>)],
    voc: &mut Vocabulary,
    prefix: &str,
) -> LooseOrdering {
    let mut counter = 0;
    let fragments = spec
        .iter()
        .map(|(any_op, ranges)| {
            let op = if *any_op {
                FragmentOp::Any
            } else {
                FragmentOp::All
            };
            let ranges = ranges
                .iter()
                .map(|&(u, extra)| {
                    let name = voc.input(&format!("{prefix}{counter}"));
                    counter += 1;
                    Range::new(name, u, u + extra)
                })
                .collect();
            Fragment::new(op, ranges)
        })
        .collect();
    LooseOrdering::new(fragments)
}

fn build_antecedent(spec: &PatternSpec, voc: &mut Vocabulary) -> Property {
    let ordering = build_ordering(&spec.fragments, voc, "n");
    let trigger = voc.input("trigger");
    Antecedent::new(ordering, trigger, spec.repeated).into()
}

fn build_timed(spec: &PatternSpec, other: &PatternSpec, voc: &mut Vocabulary) -> Property {
    let premise = build_ordering(&spec.fragments, voc, "p");
    let mut counter = 0;
    let response = LooseOrdering::new(
        other
            .fragments
            .iter()
            .map(|(any_op, ranges)| {
                let op = if *any_op {
                    FragmentOp::Any
                } else {
                    FragmentOp::All
                };
                let ranges = ranges
                    .iter()
                    .map(|&(u, extra)| {
                        let name = voc.output(&format!("q{counter}"));
                        counter += 1;
                        Range::new(name, u, u + extra)
                    })
                    .collect();
                Fragment::new(op, ranges)
            })
            .collect(),
    );
    // A huge budget so that timing never interferes with the untimed
    // equivalence (timing behaviour has its own dedicated tests).
    TimedImplication::new(premise, response, SimTime::from_sec(1)).into()
}

/// All names of the vocabulary, for uniform random traces (they include the
/// pattern's alphabet plus a couple of noise names).
fn trace_from_indices(indices: &[usize], universe: &[Name]) -> Trace {
    Trace::from_pairs(indices.iter().enumerate().map(|(k, &ix)| {
        (
            SimTime::from_ns(k as u64 + 1),
            universe[ix % universe.len()],
        )
    }))
}

/// Check monitor-vs-oracle agreement on every prefix of `trace`.
fn check_agreement(property: &Property, voc: &Vocabulary, trace: &Trace) {
    let oracle = PatternOracle::new(property);
    let mut monitor = build_monitor(property.clone(), voc).expect("well-formed by construction");
    let alphabet = property.alpha();

    // Oracle verdict: position of first rejection in the projected word.
    let oracle_rejection = oracle.check(trace).err();

    let mut projected_pos = 0usize;
    let mut monitor_rejection: Option<usize> = None;
    for &event in trace.iter() {
        let in_alpha = alphabet.contains(event.name);
        let verdict = monitor.observe(event);
        if in_alpha {
            if verdict == Verdict::Violated && monitor_rejection.is_none() {
                monitor_rejection = Some(projected_pos);
            }
            projected_pos += 1;
        }
        // A verdict, once final, must stay final.
        if verdict.is_final() {
            assert_eq!(monitor.verdict(), verdict);
        }
    }

    assert_eq!(
        monitor_rejection,
        oracle_rejection,
        "monitor and oracle disagree\n  property: {}\n  trace: {:?}",
        property.display(voc),
        trace
            .names()
            .map(|n| voc.resolve(n).to_owned())
            .collect::<Vec<_>>(),
    );

    // For one-shot antecedents, `Satisfied` must coincide with full
    // membership in L(P)·i·Σ*.
    if let Property::Antecedent(a) = property {
        if !a.repeated && monitor_rejection.is_none() {
            let accepted = oracle.accepts_full(trace);
            let satisfied = monitor.verdict() == Verdict::Satisfied;
            assert_eq!(
                satisfied,
                accepted,
                "Satisfied ≠ full membership for {}",
                property.display(voc)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn antecedent_monitor_matches_oracle(
        spec in pattern_strategy(),
        indices in prop::collection::vec(0usize..16, 0..24),
    ) {
        let mut voc = Vocabulary::new();
        let property = build_antecedent(&spec, &mut voc);
        prop_assume!(wf::check(&property, &voc).is_empty());
        // Universe = pattern alphabet + trigger + 2 noise names.
        voc.input("noise_a");
        voc.input("noise_b");
        let universe: Vec<Name> = voc.iter().collect();
        let trace = trace_from_indices(&indices, &universe);
        check_agreement(&property, &voc, &trace);
    }

    #[test]
    fn timed_monitor_matches_untimed_oracle(
        premise in pattern_strategy(),
        response in pattern_strategy(),
        indices in prop::collection::vec(0usize..16, 0..24),
    ) {
        let mut voc = Vocabulary::new();
        let property = build_timed(&premise, &response, &mut voc);
        prop_assume!(wf::check(&property, &voc).is_empty());
        voc.input("noise_a");
        let universe: Vec<Name> = voc.iter().collect();
        let trace = trace_from_indices(&indices, &universe);
        check_agreement(&property, &voc, &trace);
    }

    /// Oracle-guided walks: follow the monitor's own expected set with high
    /// probability, so deep (mostly valid) sequences are exercised, not just
    /// quickly-rejected noise.
    #[test]
    fn guided_walks_agree(
        spec in pattern_strategy(),
        choices in prop::collection::vec((0usize..8, 0u8..10), 1..40),
    ) {
        let mut voc = Vocabulary::new();
        let property = build_antecedent(&spec, &mut voc);
        prop_assume!(wf::check(&property, &voc).is_empty());
        let universe: Vec<Name> = voc.iter().collect();

        // Build the trace by consulting a scout monitor's expected set.
        let mut scout = build_monitor(property.clone(), &voc).expect("well-formed");
        let mut names = Vec::new();
        for &(pick, misbehave) in &choices {
            let expected: Vec<Name> = scout.expected().iter().collect();
            let name = if misbehave == 0 || expected.is_empty() {
                universe[pick % universe.len()]
            } else {
                expected[pick % expected.len()]
            };
            names.push(name);
            scout.observe(lomon_trace::TimedEvent::new(
                name,
                SimTime::from_ns(names.len() as u64),
            ));
        }
        let trace = Trace::from_names(names);
        check_agreement(&property, &voc, &trace);
    }
}
