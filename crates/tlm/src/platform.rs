//! The virtual platform of the case study (paper Fig. 2).
//!
//! An access-control device based on face recognition: a CPU running
//! interpreted [`crate::firmware`] drives, over a memory-mapped bus, an
//! image sensor (SEN), an image processing unit (IPU), an LCD controller
//! (LCDC), an interrupt controller (INTC), two timers, the system memory
//! (MEM), a door-lock actuator (LOCK) and a GPIO button block. The IPU is
//! the monitored component: its interface events (`set_imgAddr`,
//! `set_glAddr`, `set_glSize`, `start`, `read_img`, `set_irq`) are
//! published through the [`ObservationHub`], alongside platform-level
//! events (`btn_press`, `capture_done`, `lcd_update`, `lock_open`,
//! `lock_close`).
//!
//! All components live in one `Platform` struct behind an `Rc<RefCell<…>>`
//! handle; TLM-LT blocking transport is direct dispatch through the
//! [`AddressMap`], and autonomous behaviour (IPU gallery scans, sensor DMA,
//! timers) is scheduled as kernel callbacks capturing the handle — the
//! idiomatic Rust shape for a single-threaded SystemC-like model.

use std::cell::RefCell;
use std::rc::Rc;

use lomon_kernel::Kernel;
use lomon_trace::{Direction, Name, SimTime, Vocabulary};

use crate::bus::{AddressMap, PortId};
use crate::firmware::{Firmware, Instr, Operand};
use crate::observe::ObservationHub;
use crate::payload::{GenericPayload, TlmCommand, TlmResponse};

/// Interrupt lines into the INTC.
pub mod irq {
    /// The IPU's end-of-recognition interrupt.
    pub const IPU: u64 = 1 << 0;
    /// Timer 1.
    pub const TMR1: u64 = 1 << 1;
    /// Timer 2.
    pub const TMR2: u64 = 1 << 2;
    /// GPIO button block.
    pub const GPIO: u64 = 1 << 3;
}

/// The platform memory map (base addresses).
pub mod map {
    /// System memory.
    pub const MEM: u64 = 0x0000_0000;
    /// Memory size in bytes.
    pub const MEM_SIZE: u64 = 0x1_0000;
    /// Image processing unit registers.
    pub const IPU: u64 = 0x1000_0000;
    /// Interrupt controller registers.
    pub const INTC: u64 = 0x2000_0000;
    /// Timer 1 registers.
    pub const TMR1: u64 = 0x3000_0000;
    /// Timer 2 registers.
    pub const TMR2: u64 = 0x3100_0000;
    /// GPIO registers.
    pub const GPIO: u64 = 0x4000_0000;
    /// Image sensor registers.
    pub const SEN: u64 = 0x5000_0000;
    /// LCD controller registers.
    pub const LCDC: u64 = 0x6000_0000;
    /// Door-lock actuator registers.
    pub const LOCK: u64 = 0x7000_0000;

    /// Captured-image buffer (in MEM).
    pub const IMG_BUF: u64 = 0x100;
    /// Gallery buffer (in MEM).
    pub const GL_BUF: u64 = 0x1000;
}

/// IPU register offsets.
pub mod ipu_reg {
    /// Image address register (write publishes `set_imgAddr`).
    pub const IMG_ADDR: u64 = 0x00;
    /// Gallery address register (`set_glAddr`).
    pub const GL_ADDR: u64 = 0x08;
    /// Gallery size register (`set_glSize`).
    pub const GL_SIZE: u64 = 0x10;
    /// Control register (writing 1 publishes `start`).
    pub const CTRL: u64 = 0x18;
    /// Status register: 0 idle, 1 busy, 2 match, 3 no-match.
    pub const STATUS: u64 = 0x20;
    /// Best-match score.
    pub const RESULT: u64 = 0x28;
}

/// IPU status codes.
pub mod ipu_status {
    /// Idle, never started.
    pub const IDLE: u64 = 0;
    /// Recognition in progress.
    pub const BUSY: u64 = 1;
    /// Finished: face matched.
    pub const MATCH: u64 = 2;
    /// Finished: no match.
    pub const NO_MATCH: u64 = 3;
}

/// Fault injections — each maps to a property violation the monitors must
/// catch (or, for the nominal plan, to none).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Skip the k-th IPU configuration write (0..3): violates Example 2.
    pub skip_register: Option<usize>,
    /// Issue `start` before the last configuration write: violates
    /// Example 2.
    pub early_start: bool,
    /// The IPU never raises its interrupt: deadline miss in Example 3.
    pub drop_irq: bool,
    /// The IPU raises the interrupt after a single gallery read:
    /// premature stop in Example 3.
    pub early_irq: bool,
    /// Extra gallery reads beyond the configured size: too many in
    /// Example 3.
    pub extra_reads: u32,
    /// Multiply gallery-read delays (deadline miss when large).
    pub slowdown: u32,
    /// Write `start` twice in a row: violates the repeated Example 2.
    pub double_start: bool,
}

/// Timing parameters of the platform (all loose intervals).
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Per-instruction CPU cost.
    pub cpu_lo: SimTime,
    /// Per-instruction CPU cost (upper).
    pub cpu_hi: SimTime,
    /// Gallery-read interval (lower).
    pub read_lo: SimTime,
    /// Gallery-read interval (upper).
    pub read_hi: SimTime,
    /// Sensor capture duration (lower).
    pub capture_lo: SimTime,
    /// Sensor capture duration (upper).
    pub capture_hi: SimTime,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            cpu_lo: SimTime::from_ns(5),
            cpu_hi: SimTime::from_ns(15),
            read_lo: SimTime::from_ns(50),
            read_hi: SimTime::from_ns(150),
            capture_lo: SimTime::from_us(1),
            capture_hi: SimTime::from_us(3),
        }
    }
}

/// The published interface names (pre-interned).
#[derive(Debug, Clone, Copy)]
pub struct EventNames {
    /// Write to the IPU image-address register.
    pub set_img_addr: Name,
    /// Write to the IPU gallery-address register.
    pub set_gl_addr: Name,
    /// Write to the IPU gallery-size register.
    pub set_gl_size: Name,
    /// Recognition launched.
    pub start: Name,
    /// The IPU read one gallery image.
    pub read_img: Name,
    /// The IPU raised its interrupt.
    pub set_irq: Name,
    /// A button was pressed.
    pub btn_press: Name,
    /// The sensor finished a capture.
    pub capture_done: Name,
    /// The LCD was updated.
    pub lcd_update: Name,
    /// The lock opened.
    pub lock_open: Name,
    /// The lock closed.
    pub lock_close: Name,
}

impl EventNames {
    /// Intern all platform names into a vocabulary.
    pub fn intern(voc: &mut Vocabulary) -> Self {
        EventNames {
            set_img_addr: voc.intern("set_imgAddr", Direction::Input),
            set_gl_addr: voc.intern("set_glAddr", Direction::Input),
            set_gl_size: voc.intern("set_glSize", Direction::Input),
            start: voc.intern("start", Direction::Input),
            read_img: voc.intern("read_img", Direction::Output),
            set_irq: voc.intern("set_irq", Direction::Output),
            btn_press: voc.intern("btn_press", Direction::Input),
            capture_done: voc.intern("capture_done", Direction::Output),
            lcd_update: voc.intern("lcd_update", Direction::Output),
            lock_open: voc.intern("lock_open", Direction::Output),
            lock_close: voc.intern("lock_close", Direction::Output),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Port {
    Mem,
    Ipu,
    Intc,
    Tmr1,
    Tmr2,
    Gpio,
    Sen,
    Lcdc,
    Lock,
}

#[derive(Debug, Default)]
struct IpuState {
    img_addr: u64,
    gl_addr: u64,
    gl_size: u64,
    status: u64,
    result: u64,
    reads_done: u64,
    generation: u64,
}

#[derive(Debug, Default)]
struct IntcState {
    pending: u64,
}

#[derive(Debug, Default)]
struct TimerState {
    load_ns: u64,
    running: bool,
    generation: u64,
}

#[derive(Debug, Default)]
struct SensorState {
    /// 0 = idle/done, 1 = capturing.
    busy: u64,
    generation: u64,
}

#[derive(Debug)]
struct CpuState {
    pc: usize,
    regs: [u64; 8],
    program: Vec<Instr>,
    /// Interrupt mask the CPU is blocked on (0 = not waiting).
    wait_mask: u64,
    halted: bool,
    running: bool,
}

/// The assembled platform. Create with [`Platform::build`], boot with
/// [`PlatformHandle::boot`], then drive the [`lomon_kernel::Simulator`].
pub struct Platform {
    hub: ObservationHub,
    names: EventNames,
    address_map: AddressMap,
    ports: Vec<Port>,
    timing: TimingConfig,
    fault: FaultPlan,
    mem: Vec<u64>,
    ipu: IpuState,
    intc: IntcState,
    tmr1: TimerState,
    tmr2: TimerState,
    sen: SensorState,
    gpio_buttons: u64,
    lock_open: bool,
    cpu: CpuState,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("ipu", &self.ipu)
            .field("intc", &self.intc)
            .field("cpu_pc", &self.cpu.pc)
            .finish()
    }
}

/// Cloneable handle to the platform (kernel callbacks capture clones).
#[derive(Clone)]
pub struct PlatformHandle(Rc<RefCell<Platform>>);

impl std::fmt::Debug for PlatformHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.borrow().fmt(f)
    }
}

impl Platform {
    /// Assemble the platform: memory map, components, firmware and fault
    /// plan. The hub carries the (pre-interned) vocabulary and monitors.
    pub fn build(
        hub: ObservationHub,
        names: EventNames,
        firmware: &Firmware,
        timing: TimingConfig,
        fault: FaultPlan,
    ) -> PlatformHandle {
        firmware
            .validate(8)
            .expect("firmware must validate before boot");
        let mut address_map = AddressMap::new();
        let mut ports = Vec::new();
        let mut add = |map: &mut AddressMap, base: u64, size: u64, port: Port| {
            let id = map.map(base, size);
            debug_assert_eq!(id, PortId(ports.len()));
            ports.push(port);
        };
        add(&mut address_map, map::MEM, map::MEM_SIZE, Port::Mem);
        add(&mut address_map, map::IPU, 0x40, Port::Ipu);
        add(&mut address_map, map::INTC, 0x10, Port::Intc);
        add(&mut address_map, map::TMR1, 0x10, Port::Tmr1);
        add(&mut address_map, map::TMR2, 0x10, Port::Tmr2);
        add(&mut address_map, map::GPIO, 0x08, Port::Gpio);
        add(&mut address_map, map::SEN, 0x10, Port::Sen);
        add(&mut address_map, map::LCDC, 0x08, Port::Lcdc);
        add(&mut address_map, map::LOCK, 0x08, Port::Lock);

        PlatformHandle(Rc::new(RefCell::new(Platform {
            hub,
            names,
            address_map,
            ports,
            timing,
            fault,
            mem: vec![0; (map::MEM_SIZE / 8) as usize],
            ipu: IpuState::default(),
            intc: IntcState::default(),
            tmr1: TimerState::default(),
            tmr2: TimerState::default(),
            sen: SensorState::default(),
            gpio_buttons: 0,
            lock_open: false,
            cpu: CpuState {
                pc: 0,
                regs: [0; 8],
                program: firmware.program.clone(),
                wait_mask: 0,
                halted: false,
                running: false,
            },
        })))
    }

    fn mem_word(&mut self, address: u64) -> &mut u64 {
        let index = (address / 8) as usize;
        &mut self.mem[index]
    }

    /// Raise interrupt lines; wakes the CPU if it waits on any of them.
    /// Returns whether the CPU must be rescheduled.
    fn raise_irq(&mut self, bits: u64) -> bool {
        self.intc.pending |= bits;
        self.cpu.wait_mask & self.intc.pending != 0
    }

    /// TLM-LT blocking transport: route and execute one transaction.
    fn b_transport(&mut self, payload: &mut GenericPayload, kernel: &mut Kernel) -> BusEffect {
        let Some((port, offset)) = self.address_map.route(payload) else {
            return BusEffect::None;
        };
        let port = self.ports[port.0];
        match (port, payload.command) {
            (Port::Mem, TlmCommand::Read) => {
                payload.data = *self.mem_word(offset);
                payload.response = TlmResponse::Ok;
                BusEffect::None
            }
            (Port::Mem, TlmCommand::Write) => {
                *self.mem_word(offset) = payload.data;
                payload.response = TlmResponse::Ok;
                BusEffect::None
            }
            (Port::Ipu, _) => self.ipu_access(payload, offset, kernel),
            (Port::Intc, TlmCommand::Read) if offset == 0x00 => {
                payload.data = self.intc.pending;
                payload.response = TlmResponse::Ok;
                BusEffect::None
            }
            (Port::Intc, TlmCommand::Write) if offset == 0x08 => {
                self.intc.pending &= !payload.data;
                payload.response = TlmResponse::Ok;
                BusEffect::None
            }
            (Port::Tmr1, TlmCommand::Write) => {
                payload.response = TlmResponse::Ok;
                Self::timer_access(&mut self.tmr1, offset, payload.data, 0)
            }
            (Port::Tmr2, TlmCommand::Write) => {
                payload.response = TlmResponse::Ok;
                Self::timer_access(&mut self.tmr2, offset, payload.data, 1)
            }
            (Port::Gpio, TlmCommand::Read) if offset == 0x00 => {
                payload.data = self.gpio_buttons;
                payload.response = TlmResponse::Ok;
                BusEffect::None
            }
            (Port::Sen, TlmCommand::Write) if offset == 0x00 => {
                payload.response = TlmResponse::Ok;
                self.sen.busy = 1;
                self.sen.generation += 1;
                BusEffect::StartCapture {
                    destination: payload.data,
                    generation: self.sen.generation,
                }
            }
            (Port::Sen, TlmCommand::Read) if offset == 0x08 => {
                payload.data = self.sen.busy;
                payload.response = TlmResponse::Ok;
                BusEffect::None
            }
            (Port::Lcdc, TlmCommand::Write) if offset == 0x00 => {
                payload.response = TlmResponse::Ok;
                self.hub.publish(self.names.lcd_update, kernel);
                BusEffect::None
            }
            (Port::Lock, TlmCommand::Write) if offset == 0x00 => {
                payload.response = TlmResponse::Ok;
                let open = payload.data != 0;
                if open != self.lock_open {
                    self.lock_open = open;
                    let name = if open {
                        self.names.lock_open
                    } else {
                        self.names.lock_close
                    };
                    self.hub.publish(name, kernel);
                }
                BusEffect::None
            }
            _ => {
                payload.response = TlmResponse::CommandError;
                BusEffect::None
            }
        }
    }

    fn timer_access(timer: &mut TimerState, offset: u64, data: u64, idx: usize) -> BusEffect {
        match offset {
            0x00 => {
                timer.load_ns = data;
                BusEffect::None
            }
            0x08 => {
                if data != 0 {
                    timer.running = true;
                    timer.generation += 1;
                    BusEffect::StartTimer {
                        timer: idx,
                        generation: timer.generation,
                    }
                } else {
                    timer.running = false;
                    BusEffect::None
                }
            }
            _ => BusEffect::None,
        }
    }

    fn ipu_access(
        &mut self,
        payload: &mut GenericPayload,
        offset: u64,
        kernel: &mut Kernel,
    ) -> BusEffect {
        payload.response = TlmResponse::Ok;
        match (payload.command, offset) {
            (TlmCommand::Write, ipu_reg::IMG_ADDR) => {
                self.ipu.img_addr = payload.data;
                self.hub.publish(self.names.set_img_addr, kernel);
                BusEffect::None
            }
            (TlmCommand::Write, ipu_reg::GL_ADDR) => {
                self.ipu.gl_addr = payload.data;
                self.hub.publish(self.names.set_gl_addr, kernel);
                BusEffect::None
            }
            (TlmCommand::Write, ipu_reg::GL_SIZE) => {
                self.ipu.gl_size = payload.data;
                self.hub.publish(self.names.set_gl_size, kernel);
                BusEffect::None
            }
            (TlmCommand::Write, ipu_reg::CTRL) if payload.data & 1 != 0 => {
                self.hub.publish(self.names.start, kernel);
                self.ipu.status = ipu_status::BUSY;
                self.ipu.result = 0;
                self.ipu.reads_done = 0;
                self.ipu.generation += 1;
                BusEffect::StartRecognition {
                    generation: self.ipu.generation,
                }
            }
            (TlmCommand::Read, ipu_reg::STATUS) => {
                payload.data = self.ipu.status;
                BusEffect::None
            }
            (TlmCommand::Read, ipu_reg::RESULT) => {
                payload.data = self.ipu.result;
                BusEffect::None
            }
            _ => {
                payload.response = TlmResponse::CommandError;
                BusEffect::None
            }
        }
    }
}

/// Side effects a bus access requests from the scheduler (they need the
/// platform handle, so the caller performs them after the borrow ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusEffect {
    None,
    StartRecognition { generation: u64 },
    StartCapture { destination: u64, generation: u64 },
    StartTimer { timer: usize, generation: u64 },
}

impl PlatformHandle {
    /// Borrow the platform immutably (inspection).
    pub fn with<R>(&self, f: impl FnOnce(&Platform) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Current IPU status register value.
    pub fn ipu_status(&self) -> u64 {
        self.0.borrow().ipu.status
    }

    /// Whether the lock is currently open.
    pub fn lock_is_open(&self) -> bool {
        self.0.borrow().lock_open
    }

    /// Whether the CPU halted.
    pub fn cpu_halted(&self) -> bool {
        self.0.borrow().cpu.halted
    }

    /// Seed the gallery with `count` words derived from the kernel RNG and
    /// start the CPU.
    pub fn boot(&self, kernel: &mut Kernel, gallery_size: u64) {
        {
            let mut p = self.0.borrow_mut();
            for k in 0..gallery_size {
                let word = kernel.draw(0, 0xff);
                *p.mem_word(map::GL_BUF + 8 * k) = word;
            }
            p.cpu.running = true;
        }
        let handle = self.clone();
        kernel.call_in(SimTime::ZERO, move |k| handle.cpu_step(k));
    }

    /// Press the GPIO button after `delay` (external stimulus).
    pub fn press_button_in(&self, kernel: &mut Kernel, delay: SimTime) {
        let handle = self.clone();
        kernel.call_in(delay, move |k| {
            let wake = {
                let mut p = handle.0.borrow_mut();
                p.gpio_buttons = 1;
                p.hub.publish(p.names.btn_press, k);
                p.raise_irq(irq::GPIO)
            };
            if wake {
                handle.schedule_cpu(k, SimTime::ZERO);
            }
        });
    }

    fn schedule_cpu(&self, kernel: &mut Kernel, delay: SimTime) {
        let handle = self.clone();
        kernel.call_in(delay, move |k| handle.cpu_step(k));
    }

    /// Issue one bus transaction from outside the CPU (tests, debuggers).
    pub fn transport(&self, payload: &mut GenericPayload, kernel: &mut Kernel) {
        let effect = self.0.borrow_mut().b_transport(payload, kernel);
        self.apply_effect(effect, kernel);
    }

    fn apply_effect(&self, effect: BusEffect, kernel: &mut Kernel) {
        match effect {
            BusEffect::None => {}
            BusEffect::StartRecognition { generation } => {
                let (lo, hi) = {
                    let p = self.0.borrow();
                    (p.timing.read_lo, p.timing.read_hi)
                };
                let handle = self.clone();
                let delay = SimTime::from_ps(kernel.draw(lo.as_ps(), hi.as_ps()));
                kernel.call_in(delay, move |k| handle.ipu_tick(k, generation));
            }
            BusEffect::StartCapture {
                destination,
                generation,
            } => {
                let (lo, hi) = {
                    let p = self.0.borrow();
                    (p.timing.capture_lo, p.timing.capture_hi)
                };
                let handle = self.clone();
                let delay = SimTime::from_ps(kernel.draw(lo.as_ps(), hi.as_ps()));
                kernel.call_in(delay, move |k| {
                    let mut p = handle.0.borrow_mut();
                    if p.sen.generation != generation {
                        return; // superseded capture
                    }
                    let word = k.draw(0, 0xff);
                    *p.mem_word(destination) = word;
                    p.sen.busy = 0;
                    p.hub.publish(p.names.capture_done, k);
                });
            }
            BusEffect::StartTimer { timer, generation } => {
                let handle = self.clone();
                let delay_ns = {
                    let p = self.0.borrow();
                    if timer == 0 {
                        p.tmr1.load_ns
                    } else {
                        p.tmr2.load_ns
                    }
                };
                kernel.call_in(SimTime::from_ns(delay_ns), move |k| {
                    let wake = {
                        let mut p = handle.0.borrow_mut();
                        let (state, line) = if timer == 0 {
                            (&mut p.tmr1, irq::TMR1)
                        } else {
                            (&mut p.tmr2, irq::TMR2)
                        };
                        if state.generation != generation || !state.running {
                            return; // cancelled or reprogrammed
                        }
                        state.running = false;
                        p.raise_irq(line)
                    };
                    if wake {
                        handle.schedule_cpu(k, SimTime::ZERO);
                    }
                });
            }
        }
    }

    /// One IPU activity step: a gallery read, or completion.
    fn ipu_tick(&self, kernel: &mut Kernel, generation: u64) {
        enum Next {
            Read(SimTime),
            Done,
            Stale,
        }
        let next = {
            let mut p = self.0.borrow_mut();
            if p.ipu.generation != generation || p.ipu.status != ipu_status::BUSY {
                Next::Stale
            } else {
                let total = {
                    let planned = p.ipu.gl_size + u64::from(p.fault.extra_reads);
                    if p.fault.early_irq {
                        1
                    } else {
                        planned
                    }
                };
                if p.ipu.reads_done < total {
                    // One gallery read: fetch the word, accumulate a score.
                    let index = p.ipu.reads_done % p.ipu.gl_size.max(1);
                    let gallery_addr = p.ipu.gl_addr + 8 * index;
                    let img_addr = p.ipu.img_addr;
                    let gallery_word = *p.mem_word(gallery_addr);
                    let probe = *p.mem_word(img_addr);
                    if gallery_word == probe {
                        p.ipu.result += 1;
                    }
                    p.ipu.reads_done += 1;
                    p.hub.publish(p.names.read_img, kernel);
                    let slow = u64::from(p.fault.slowdown.max(1));
                    let lo = p.timing.read_lo * slow;
                    let hi = p.timing.read_hi * slow;
                    let delay = SimTime::from_ps(kernel.draw(lo.as_ps(), hi.as_ps()));
                    Next::Read(delay)
                } else {
                    Next::Done
                }
            }
        };
        match next {
            Next::Stale => {}
            Next::Read(delay) => {
                let handle = self.clone();
                kernel.call_in(delay, move |k| handle.ipu_tick(k, generation));
            }
            Next::Done => {
                let wake = {
                    let mut p = self.0.borrow_mut();
                    p.ipu.status = if p.ipu.result > 0 {
                        ipu_status::MATCH
                    } else {
                        ipu_status::NO_MATCH
                    };
                    if p.fault.drop_irq {
                        false
                    } else {
                        p.hub.publish(p.names.set_irq, kernel);
                        p.raise_irq(irq::IPU)
                    }
                };
                if wake {
                    self.schedule_cpu(kernel, SimTime::ZERO);
                }
            }
        }
    }

    /// Execute CPU instructions until a blocking operation.
    fn cpu_step(&self, kernel: &mut Kernel) {
        // Bounded burst per activation keeps single dispatches small.
        for _ in 0..64 {
            enum CpuAction {
                Continue,
                Reschedule(SimTime),
                Block,
            }
            let action = {
                let mut p = self.0.borrow_mut();
                if p.cpu.halted || !p.cpu.running {
                    return;
                }
                let pc = p.cpu.pc;
                let instr = p.cpu.program[pc];
                match instr {
                    Instr::Halt => {
                        p.cpu.halted = true;
                        return;
                    }
                    Instr::Goto(target) => {
                        p.cpu.pc = target;
                        CpuAction::Continue
                    }
                    Instr::BranchIfEq { reg, value, target } => {
                        p.cpu.pc = if p.cpu.regs[reg] == value {
                            target
                        } else {
                            pc + 1
                        };
                        CpuAction::Continue
                    }
                    Instr::Delay { lo, hi } => {
                        p.cpu.pc = pc + 1;
                        let delay = SimTime::from_ps(kernel.draw(lo.as_ps(), hi.as_ps()));
                        CpuAction::Reschedule(delay)
                    }
                    Instr::WaitIrq { mask } => {
                        if p.intc.pending & mask != 0 {
                            p.intc.pending &= !mask; // acknowledge
                            p.cpu.wait_mask = 0;
                            p.cpu.pc = pc + 1;
                            CpuAction::Continue
                        } else {
                            p.cpu.wait_mask = mask;
                            CpuAction::Block
                        }
                    }
                    Instr::Write { addr, value } => {
                        let data = match value {
                            Operand::Imm(v) => v,
                            Operand::Reg(r) => p.cpu.regs[r],
                        };
                        p.cpu.pc = pc + 1;
                        let mut payload = GenericPayload::write(addr, data);
                        let effect = p.b_transport(&mut payload, kernel);
                        debug_assert!(payload.is_ok(), "firmware write failed: {payload:?}");
                        drop(p);
                        self.apply_effect(effect, kernel);
                        CpuAction::Continue
                    }
                    Instr::Read { addr, reg } => {
                        p.cpu.pc = pc + 1;
                        let mut payload = GenericPayload::read(addr);
                        let effect = p.b_transport(&mut payload, kernel);
                        debug_assert!(payload.is_ok(), "firmware read failed: {payload:?}");
                        p.cpu.regs[reg] = payload.data;
                        drop(p);
                        self.apply_effect(effect, kernel);
                        CpuAction::Continue
                    }
                }
            };
            match action {
                CpuAction::Continue => {
                    // Charge the per-instruction loose cost occasionally to
                    // model bus latency without one dispatch per instr.
                    continue;
                }
                CpuAction::Reschedule(delay) => {
                    self.schedule_cpu(kernel, delay);
                    return;
                }
                CpuAction::Block => {
                    // The CPU sleeps until an interrupt in `wait_mask` is
                    // raised (raise_irq reschedules us); clear the mask on
                    // wake in the next activation.
                    let mut p = self.0.borrow_mut();
                    if p.intc.pending & p.cpu.wait_mask != 0 {
                        // Raced with an interrupt raised in this very step.
                        p.cpu.wait_mask = 0;
                        continue;
                    }
                    return;
                }
            }
        }
        // Burst exhausted: yield with a loose per-burst cost.
        let (lo, hi) = {
            let p = self.0.borrow();
            (p.timing.cpu_lo, p.timing.cpu_hi)
        };
        let delay = SimTime::from_ps(kernel.draw(lo.as_ps(), hi.as_ps()));
        self.schedule_cpu(kernel, delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_kernel::Simulator;

    fn minimal_hub() -> (ObservationHub, EventNames) {
        let mut voc = Vocabulary::new();
        let names = EventNames::intern(&mut voc);
        (ObservationHub::new(voc), names)
    }

    #[test]
    fn memory_read_write_roundtrip() {
        let (hub, names) = minimal_hub();
        let fw = Firmware::new("halt", vec![Instr::Halt]);
        let platform = Platform::build(
            hub,
            names,
            &fw,
            TimingConfig::default(),
            FaultPlan::default(),
        );
        let mut sim = Simulator::new(1);
        let mut w = GenericPayload::write(0x80, 0xdead);
        platform.transport(&mut w, sim.kernel());
        assert!(w.is_ok());
        let mut r = GenericPayload::read(0x80);
        platform.transport(&mut r, sim.kernel());
        assert_eq!(r.data, 0xdead);
    }

    #[test]
    fn unmapped_address_errors() {
        let (hub, names) = minimal_hub();
        let fw = Firmware::new("halt", vec![Instr::Halt]);
        let platform = Platform::build(
            hub,
            names,
            &fw,
            TimingConfig::default(),
            FaultPlan::default(),
        );
        let mut sim = Simulator::new(1);
        let mut t = GenericPayload::read(0x9999_9999);
        platform.transport(&mut t, sim.kernel());
        assert_eq!(t.response, TlmResponse::AddressError);
    }

    #[test]
    fn ipu_register_writes_publish_events() {
        let (hub, names) = minimal_hub();
        let fw = Firmware::new("halt", vec![Instr::Halt]);
        let platform = Platform::build(
            hub.clone(),
            names,
            &fw,
            TimingConfig::default(),
            FaultPlan::default(),
        );
        let mut sim = Simulator::new(1);
        for (offset, _label) in [
            (ipu_reg::IMG_ADDR, "set_imgAddr"),
            (ipu_reg::GL_ADDR, "set_glAddr"),
            (ipu_reg::GL_SIZE, "set_glSize"),
        ] {
            let mut t = GenericPayload::write(map::IPU + offset, 0x42);
            platform.transport(&mut t, sim.kernel());
            assert!(t.is_ok());
        }
        let voc = hub.vocabulary();
        let texts: Vec<String> = hub
            .trace()
            .names()
            .map(|n| voc.resolve(n).to_owned())
            .collect();
        assert_eq!(texts, vec!["set_imgAddr", "set_glAddr", "set_glSize"]);
    }

    #[test]
    fn recognition_runs_to_interrupt() {
        let (hub, names) = minimal_hub();
        let fw = Firmware::new("halt", vec![Instr::Halt]);
        let platform = Platform::build(
            hub.clone(),
            names,
            &fw,
            TimingConfig::default(),
            FaultPlan::default(),
        );
        let mut sim = Simulator::new(3);
        // Configure: gallery of 4 at GL_BUF, image at IMG_BUF.
        for (offset, value) in [
            (ipu_reg::IMG_ADDR, map::IMG_BUF),
            (ipu_reg::GL_ADDR, map::GL_BUF),
            (ipu_reg::GL_SIZE, 4),
            (ipu_reg::CTRL, 1),
        ] {
            let mut t = GenericPayload::write(map::IPU + offset, value);
            platform.transport(&mut t, sim.kernel());
        }
        sim.run_until(SimTime::from_ms(1));
        assert!(platform.ipu_status() >= ipu_status::MATCH);
        let voc = hub.vocabulary();
        let read = voc.lookup("read_img").unwrap();
        let irq_name = voc.lookup("set_irq").unwrap();
        let trace = hub.trace();
        assert_eq!(trace.names().filter(|n| *n == read).count(), 4);
        assert_eq!(trace.names().filter(|n| *n == irq_name).count(), 1);
        // IPU interrupt pending in the INTC.
        let mut t = GenericPayload::read(map::INTC);
        platform.transport(&mut t, sim.kernel());
        assert_eq!(t.data & irq::IPU, irq::IPU);
    }

    #[test]
    fn firmware_waits_for_button_then_runs() {
        let (hub, names) = minimal_hub();
        // Minimal firmware: wait button, configure IPU, start, wait irq,
        // show on LCD, halt.
        let fw = Firmware::new(
            "mini",
            vec![
                Instr::WaitIrq { mask: irq::GPIO },
                Instr::Write {
                    addr: map::IPU + ipu_reg::IMG_ADDR,
                    value: Operand::Imm(map::IMG_BUF),
                },
                Instr::Write {
                    addr: map::IPU + ipu_reg::GL_ADDR,
                    value: Operand::Imm(map::GL_BUF),
                },
                Instr::Write {
                    addr: map::IPU + ipu_reg::GL_SIZE,
                    value: Operand::Imm(3),
                },
                Instr::Write {
                    addr: map::IPU + ipu_reg::CTRL,
                    value: Operand::Imm(1),
                },
                Instr::WaitIrq { mask: irq::IPU },
                Instr::Read {
                    addr: map::IPU + ipu_reg::STATUS,
                    reg: 1,
                },
                Instr::Write {
                    addr: map::LCDC,
                    value: Operand::Reg(1),
                },
                Instr::Halt,
            ],
        );
        let platform = Platform::build(
            hub.clone(),
            names,
            &fw,
            TimingConfig::default(),
            FaultPlan::default(),
        );
        let mut sim = Simulator::new(5);
        platform.boot(sim.kernel(), 3);
        platform.press_button_in(sim.kernel(), SimTime::from_us(10));
        sim.run_until(SimTime::from_ms(2));
        assert!(platform.cpu_halted());
        let voc = hub.vocabulary();
        let texts: Vec<String> = hub
            .trace()
            .names()
            .map(|n| voc.resolve(n).to_owned())
            .collect();
        // btn, 3 config writes, start, 3 reads, irq, lcd.
        assert_eq!(texts[0], "btn_press");
        assert_eq!(texts[1..4], ["set_imgAddr", "set_glAddr", "set_glSize"]);
        assert_eq!(texts[4], "start");
        assert_eq!(texts[5..8], ["read_img", "read_img", "read_img"]);
        assert_eq!(texts[8], "set_irq");
        assert_eq!(texts[9], "lcd_update");
    }

    #[test]
    fn timer_raises_its_interrupt() {
        let (hub, names) = minimal_hub();
        let fw = Firmware::new(
            "timer",
            vec![
                Instr::Write {
                    addr: map::TMR1,
                    value: Operand::Imm(500), // 500 ns
                },
                Instr::Write {
                    addr: map::TMR1 + 0x08,
                    value: Operand::Imm(1),
                },
                Instr::WaitIrq { mask: irq::TMR1 },
                Instr::Halt,
            ],
        );
        let platform = Platform::build(
            hub,
            names,
            &fw,
            TimingConfig::default(),
            FaultPlan::default(),
        );
        let mut sim = Simulator::new(1);
        platform.boot(sim.kernel(), 1);
        sim.run_until(SimTime::from_us(10));
        assert!(platform.cpu_halted());
        assert!(sim.now() >= SimTime::from_ns(500));
    }

    #[test]
    fn lock_events_published_once_per_transition() {
        let (hub, names) = minimal_hub();
        let fw = Firmware::new(
            "lock",
            vec![
                Instr::Write {
                    addr: map::LOCK,
                    value: Operand::Imm(1),
                },
                Instr::Write {
                    addr: map::LOCK,
                    value: Operand::Imm(1), // no transition
                },
                Instr::Write {
                    addr: map::LOCK,
                    value: Operand::Imm(0),
                },
                Instr::Halt,
            ],
        );
        let platform = Platform::build(
            hub.clone(),
            names,
            &fw,
            TimingConfig::default(),
            FaultPlan::default(),
        );
        let mut sim = Simulator::new(1);
        platform.boot(sim.kernel(), 1);
        sim.run_until(SimTime::from_us(1));
        let voc = hub.vocabulary();
        let texts: Vec<String> = hub
            .trace()
            .names()
            .map(|n| voc.resolve(n).to_owned())
            .collect();
        assert_eq!(texts, vec!["lock_open", "lock_close"]);
        assert!(!platform.lock_is_open());
    }
}
