//! Compiling a property set into an [`Engine`]: parse/validate *everything*
//! first, report every error, then lower the **whole rulebook** into one
//! fused program — unique recognizer groups plus the single global
//! event→action CSR table every backend dispatches through.

use std::sync::Arc;

use lomon_core::analysis::{self, AnalysisOptions, DiagCode, Diagnostic};
use lomon_core::ast::Property;
use lomon_core::compiled::CompiledProgram;
use lomon_core::fused::{build_csr, FusedProgram, Sharing};
use lomon_core::monitor::{build_monitor, PropertyMonitor};
use lomon_core::parse::{parse_property, ParseError};
use lomon_core::wf::WfError;
use lomon_trace::{Name, NameSet, Vocabulary};

use crate::session::{Backend, DispatchMode, Session};

/// Why one property of the set failed to compile. The engine never stops at
/// the first bad property: [`Engine::compile`] returns *all* failures so a
/// rulebook can be fixed in one pass.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The property text did not parse.
    Parse {
        /// Position of the property in the compiled set.
        index: usize,
        /// The offending source text.
        source: String,
        /// The parse error, with its span into `source`.
        error: ParseError,
    },
    /// The property parsed but broke a well-formedness side condition.
    IllFormed {
        /// Position of the property in the compiled set.
        index: usize,
        /// The offending source text (or rendered AST).
        source: String,
        /// Every violated side condition.
        errors: Vec<WfError>,
    },
}

impl CompileError {
    /// Position of the failing property in the compiled set.
    pub fn index(&self) -> usize {
        match self {
            CompileError::Parse { index, .. } | CompileError::IllFormed { index, .. } => *index,
        }
    }

    /// Full human-readable rendering (multi-line for parse errors, which
    /// carry a caret into the source).
    pub fn display(&self, voc: &Vocabulary) -> String {
        match self {
            CompileError::Parse {
                index,
                source,
                error,
            } => format!(
                "property {}: {}",
                index + 1,
                error.display_with_source(source)
            ),
            CompileError::IllFormed {
                index,
                source,
                errors,
            } => {
                let all: Vec<String> = errors.iter().map(|e| e.display(voc)).collect();
                format!(
                    "property {} `{}` is ill-formed: {}",
                    index + 1,
                    source,
                    all.join("; ")
                )
            }
        }
    }
}

/// One validated property of the compiled set: the interpreter prototype
/// that [`Backend::Interp`] sessions clone, the lowered flat-table program
/// that [`Backend::Compiled`] sessions share, plus everything dispatch
/// needs precomputed.
#[derive(Debug, Clone)]
pub(crate) struct CompiledProperty {
    pub(crate) prototype: PropertyMonitor,
    pub(crate) program: Arc<CompiledProgram>,
    pub(crate) alphabet: NameSet,
    /// Shared so per-report property lines clone a pointer, not the text.
    pub(crate) display: Arc<str>,
    pub(crate) timed: bool,
}

/// A set of properties compiled once and shared by any number of
/// [`Session`]s. See the crate docs for the dispatch design.
#[derive(Debug, Clone)]
pub struct Engine {
    pub(crate) properties: Vec<CompiledProperty>,
    /// The rulebook lowered as one program: unique recognizer groups
    /// (structurally deduplicated across properties), the group→members
    /// fan-out, and the single global name→(group, action-row) CSR table
    /// the default fused backend dispatches through. The per-property
    /// backends use the flat `prop_*` index below, which carries the same
    /// routing facts at property granularity.
    pub(crate) fused: Arc<FusedProgram>,
    /// The dispatch index at property granularity: the subscribers of
    /// name `n` are `prop_subs[prop_start[n] .. prop_start[n + 1]]`
    /// (ascending) with, in parallel, each property's action-table row
    /// offset for `n` in `prop_bases`. Built from the per-property
    /// programs (see `build`), it carries the same routing facts as the
    /// fused CSR expanded through the member table; the per-property
    /// backends keep this flat form because re-walking the group→members
    /// indirection per event costs them ~30% on the disjoint hot loop.
    pub(crate) prop_start: Vec<u32>,
    pub(crate) prop_subs: Vec<u32>,
    pub(crate) prop_bases: Vec<u32>,
    /// Ids of timed-implication properties (the only ones with deadlines)
    /// — property-granular, for the per-property backends' deadline sweep.
    pub(crate) timed_ids: Vec<u32>,
    /// Dense id → is-timed flags: the per-step hot path reads this compact
    /// array instead of striding over the full [`CompiledProperty`] structs.
    pub(crate) timed_flags: Vec<bool>,
}

impl Engine {
    /// Parse and validate every property text against `voc`, then build the
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns one [`CompileError`] per failing property — all of them, not
    /// just the first.
    pub fn compile<S: AsRef<str>>(
        texts: &[S],
        voc: &mut Vocabulary,
    ) -> Result<Engine, Vec<CompileError>> {
        let mut parsed = Vec::with_capacity(texts.len());
        let mut errors = Vec::new();
        for (index, text) in texts.iter().enumerate() {
            let text = text.as_ref();
            match parse_property(text, voc) {
                Ok(property) => parsed.push((index, text.to_owned(), property)),
                Err(error) => errors.push(CompileError::Parse {
                    index,
                    source: text.to_owned(),
                    error,
                }),
            }
        }
        let engine = Self::build(parsed, voc, &mut errors);
        if errors.is_empty() {
            Ok(engine)
        } else {
            errors.sort_by_key(CompileError::index);
            Err(errors)
        }
    }

    /// Like [`Engine::compile`], followed by the whole-rulebook static
    /// analysis of [`lomon_core::analysis`]: returns the engine together
    /// with every `L003`–`L009` finding (duplicates, vacuity, subsumption,
    /// conflicts, coverage, dead tables). The CLI surfaces these as
    /// warnings on `check`/`watch`/`smc` and as the full report on
    /// `lomon lint`.
    ///
    /// # Errors
    ///
    /// Returns one [`CompileError`] per failing property, exactly as
    /// [`Engine::compile`] — render those as diagnostics with
    /// [`error_diagnostics`].
    pub fn compile_with_analysis<S: AsRef<str>>(
        texts: &[S],
        voc: &mut Vocabulary,
        opts: &AnalysisOptions,
    ) -> Result<(Engine, Vec<Diagnostic>), Vec<CompileError>> {
        let engine = Self::compile(texts, voc)?;
        let displays: Vec<&str> = engine
            .properties
            .iter()
            .map(|p| p.display.as_ref())
            .collect();
        let diagnostics = analysis::analyze(&engine.fused, &displays, voc, opts);
        Ok((engine, diagnostics))
    }

    /// Build an engine from already-constructed ASTs (validated here).
    ///
    /// # Errors
    ///
    /// Returns one [`CompileError::IllFormed`] per property that breaks a
    /// well-formedness side condition.
    pub fn from_properties(
        properties: Vec<Property>,
        voc: &Vocabulary,
    ) -> Result<Engine, Vec<CompileError>> {
        let parsed = properties
            .into_iter()
            .enumerate()
            .map(|(index, p)| (index, p.display(voc), p))
            .collect();
        let mut errors = Vec::new();
        let engine = Self::build(parsed, voc, &mut errors);
        if errors.is_empty() {
            Ok(engine)
        } else {
            Err(errors)
        }
    }

    fn build(
        parsed: Vec<(usize, String, Property)>,
        voc: &Vocabulary,
        errors: &mut Vec<CompileError>,
    ) -> Engine {
        let mut properties = Vec::with_capacity(parsed.len());
        for (index, source, property) in parsed {
            let timed = matches!(property, Property::Timed(_));
            match build_monitor(property.clone(), voc) {
                Ok(prototype) => {
                    let alphabet = prototype.alphabet();
                    // `build_monitor` validated the property; lower it into
                    // the flat-table program the compiled backend runs on.
                    let program = Arc::new(CompiledProgram::lower(&property));
                    properties.push(CompiledProperty {
                        prototype,
                        program,
                        alphabet,
                        display: Arc::from(source),
                        timed,
                    });
                }
                Err(wf_errors) => errors.push(CompileError::IllFormed {
                    index,
                    source,
                    errors: wf_errors,
                }),
            }
        }

        let mut timed_ids = Vec::new();
        let mut timed_flags = Vec::with_capacity(properties.len());
        for (id, compiled) in properties.iter().enumerate() {
            if compiled.timed {
                timed_ids.push(id as u32);
            }
            timed_flags.push(compiled.timed);
        }
        let programs: Vec<Arc<CompiledProgram>> =
            properties.iter().map(|p| Arc::clone(&p.program)).collect();
        let fused = Arc::new(FusedProgram::fuse(&programs));

        // Property-granular CSR for the per-property backends, built
        // directly from each property's own program (alphabet + action
        // rows). Equal fingerprints make a property's table identical to
        // its fused group's, so this holds the same routing facts as
        // expanding the fused CSR through the member table — just with
        // ascending property ids per name (stable counting sort over
        // properties in id order).
        let width = properties
            .iter()
            .flat_map(|p| p.program.alphabet().iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        let prop_items: Vec<(usize, (u32, u32))> = properties
            .iter()
            .enumerate()
            .flat_map(|(id, p)| {
                p.program.alphabet().iter().map(move |name| {
                    let base = p
                        .program
                        .action_row(name)
                        .expect("alphabet member has an action row");
                    (name.index(), (id as u32, base))
                })
            })
            .collect();
        let (prop_start, prop_pairs) = build_csr(width, &prop_items);
        let (prop_subs, prop_bases) = prop_pairs.into_iter().unzip();

        Engine {
            properties,
            fused,
            prop_start,
            prop_subs,
            prop_bases,
            timed_ids,
            timed_flags,
        }
    }

    /// Number of compiled properties.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// Whether the rulebook is empty.
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }

    /// The source text (or rendered AST) of property `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn property_display(&self, id: usize) -> &str {
        self.properties[id].display.as_ref()
    }

    /// The alphabet of property `id`, as computed at compile time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn alphabet(&self, id: usize) -> &NameSet {
        &self.properties[id].alphabet
    }

    /// The fused rulebook program: unique recognizer groups, the
    /// group→members fan-out, and the global name→(group, row) CSR table
    /// all backends dispatch through.
    pub fn fused(&self) -> &Arc<FusedProgram> {
        &self.fused
    }

    /// How much structure the rulebook fusion shared (unique programs and
    /// cells vs the per-property totals) — static facts of the compiled
    /// set, echoed into every session's dispatch statistics.
    pub fn sharing(&self) -> Sharing {
        self.fused.sharing()
    }

    /// The ids of the properties subscribed to `name` — the index row an
    /// event of that name dispatches to, in ascending property order.
    #[inline]
    pub fn subscribers(&self, name: Name) -> impl Iterator<Item = u32> + '_ {
        self.prop_subscribers(name).0.iter().copied()
    }

    /// The property-granular CSR row of `name`: subscribed property ids
    /// (ascending) with, in parallel, each property's precomputed
    /// action-table row offset for the name. Empty for names outside
    /// every alphabet (including names interned after compilation).
    #[inline]
    pub(crate) fn prop_subscribers(&self, name: Name) -> (&[u32], &[u32]) {
        match self.prop_start.get(name.index()..name.index() + 2) {
            Some(bounds) => {
                let (s, e) = (bounds[0] as usize, bounds[1] as usize);
                (&self.prop_subs[s..e], &self.prop_bases[s..e])
            }
            None => (&[], &[]),
        }
    }

    /// Open a fresh session using indexed dispatch on the fused rulebook
    /// backend — the defaults.
    pub fn session(&self) -> Session<'_> {
        self.session_with(DispatchMode::Indexed)
    }

    /// Open a fresh session with an explicit dispatch mode —
    /// [`DispatchMode::Broadcast`] is the naive baseline the benchmarks
    /// compare against. Runs on the default [`Backend::Fused`].
    pub fn session_with(&self, mode: DispatchMode) -> Session<'_> {
        self.session_with_backend(mode, Backend::Fused)
    }

    /// Open a fresh session with explicit dispatch mode *and* execution
    /// backend — [`Backend::Compiled`] steps one monitor per property,
    /// [`Backend::Interp`] is the tree-walking differential oracle.
    pub fn session_with_backend(&self, mode: DispatchMode, backend: Backend) -> Session<'_> {
        Session::new(self, mode, backend)
    }
}

/// Render compile failures through the diagnostic sink: parse errors as
/// `L001`, well-formedness violations as `L002` — so `lomon lint` and
/// `lomon check` report syntactic, semantic and structural findings in one
/// format.
pub fn error_diagnostics(errors: &[CompileError], voc: &Vocabulary) -> Vec<Diagnostic> {
    errors
        .iter()
        .map(|error| {
            let code = match error {
                CompileError::Parse { .. } => DiagCode::L001,
                CompileError::IllFormed { .. } => DiagCode::L002,
            };
            Diagnostic::new(code, vec![error.index()], error.display(voc))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_reports_every_error() {
        let mut voc = Vocabulary::new();
        let errors = Engine::compile(
            &[
                "all{a, b} << start once", // fine
                "all{unclosed << start",   // parse error
                "a << a once",             // ill-formed: trigger inside P
                "also { broken",           // parse error
            ],
            &mut voc,
        )
        .unwrap_err();
        assert_eq!(errors.len(), 3);
        assert_eq!(
            errors.iter().map(CompileError::index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(matches!(errors[0], CompileError::Parse { .. }));
        assert!(matches!(errors[1], CompileError::IllFormed { .. }));
        let text = errors[1].display(&voc);
        assert!(text.contains("property 3"), "display: {text}");
    }

    #[test]
    fn index_maps_names_to_subscribers() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(&["all{a, b} << start once", "b << go once"], &mut voc)
            .expect("compiles");
        assert_eq!(engine.len(), 2);
        let a = voc.lookup("a").unwrap();
        let b = voc.lookup("b").unwrap();
        assert_eq!(engine.subscribers(a).collect::<Vec<_>>(), vec![0]);
        assert_eq!(engine.subscribers(b).collect::<Vec<_>>(), vec![0, 1]);
        // A name interned only after compilation has no subscribers.
        let late = voc.input("latecomer");
        assert_eq!(engine.subscribers(late).count(), 0);
        assert!(engine.alphabet(1).contains(b));
        assert_eq!(engine.property_display(1), "b << go once");
    }

    #[test]
    fn identical_properties_fuse_into_one_group() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(
            &[
                "all{a, b} << start once",
                "b << go once",
                "all{a, b} << start once",
            ],
            &mut voc,
        )
        .expect("compiles");
        let sharing = engine.sharing();
        assert_eq!(sharing.properties, 3);
        assert_eq!(sharing.unique_programs, 2);
        assert_eq!(sharing.total_cells, 2 + 1 + 2);
        assert_eq!(sharing.unique_cells, 2 + 1);
        // Subscriber expansion still reports every member property.
        let a = voc.lookup("a").unwrap();
        assert_eq!(engine.subscribers(a).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn timed_properties_are_tracked() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(&["a << i once", "go => out:done within 50 ns"], &mut voc)
            .expect("compiles");
        assert_eq!(engine.timed_ids, vec![1]);
    }
}
