//! Ready-made verification scenarios on the face-recognition platform —
//! the full Fig. 1 loop: stimuli (button presses), the design under
//! verification (the platform), and the assertion checkers (the attached
//! loose-ordering monitors).
//!
//! A scenario assembles the firmware (with seed-dependent *loose ordering*
//! of the IPU configuration writes — the point of the paper: any order must
//! be accepted), injects the configured faults, attaches the two case-study
//! properties, runs the simulation and reports per-property verdicts plus
//! the recorded trace for offline replay.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lomon_core::monitor::build_monitor;
use lomon_core::parse::parse_property;
use lomon_core::verdict::Verdict;
use lomon_kernel::{KernelStats, Simulator};
use lomon_trace::{SimTime, Trace, Vocabulary};

use crate::firmware::{Firmware, Instr, Operand};
use crate::observe::ObservationHub;
use crate::platform::{ipu_reg, irq, map, EventNames, FaultPlan, Platform, TimingConfig};

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Seed for all loose timing, data and ordering draws.
    pub seed: u64,
    /// Number of button presses (recognition episodes).
    pub captures: u32,
    /// Gallery size the firmware programs into the IPU.
    pub gallery_size: u64,
    /// The budget `t` of the Example 3 timed property.
    pub budget: SimTime,
    /// Fault injections.
    pub fault: FaultPlan,
    /// Platform timing.
    pub timing: TimingConfig,
    /// Attach the online monitors (disable to measure raw simulation
    /// speed, i.e. the monitoring overhead baseline).
    pub monitors: bool,
}

impl ScenarioConfig {
    /// A nominal scenario with sensible defaults.
    pub fn nominal(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            captures: 2,
            gallery_size: 6,
            budget: SimTime::from_us(20),
            fault: FaultPlan::default(),
            timing: TimingConfig::default(),
            monitors: true,
        }
    }

    /// Derive a faulty variant.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Per-property final verdicts, in attachment order
    /// (`example2`, `example3`).
    pub verdicts: Vec<(String, Verdict)>,
    /// The first violation diagnostic, if any.
    pub violation: Option<String>,
    /// The recorded interface trace.
    pub trace: Trace,
    /// The vocabulary the trace is written against.
    pub vocabulary: Vocabulary,
    /// Final simulated time.
    pub end_time: SimTime,
    /// Kernel statistics.
    pub stats: KernelStats,
}

impl ScenarioReport {
    /// Whether every monitored property is un-violated.
    pub fn all_ok(&self) -> bool {
        self.verdicts.iter().all(|(_, v)| v.is_ok())
    }
}

/// Build the case-study firmware: per-episode — wait button, capture,
/// configure the IPU (shuffled order; faults may skip/reorder), start,
/// wait the IPU interrupt, display, actuate the lock.
pub fn case_study_firmware(config: &ScenarioConfig) -> Firmware {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xf1f2_f3f4);
    let mut program = Vec::new();

    // Episode loop: the firmware loops forever; the scenario schedules a
    // finite number of button presses.
    let loop_start = program.len();
    program.push(Instr::WaitIrq { mask: irq::GPIO });
    // Capture an image into IMG_BUF.
    program.push(Instr::Write {
        addr: map::SEN,
        value: Operand::Imm(map::IMG_BUF),
    });
    // Poll the sensor until idle.
    let poll = program.len();
    program.push(Instr::Delay {
        lo: SimTime::from_ns(200),
        hi: SimTime::from_ns(400),
    });
    program.push(Instr::Read {
        addr: map::SEN + 0x08,
        reg: 0,
    });
    program.push(Instr::BranchIfEq {
        reg: 0,
        value: 1,
        target: poll,
    });

    // IPU configuration writes, in a seed-dependent order (the loose
    // ordering the paper's Example 2 permits).
    let mut config_writes = vec![
        Instr::Write {
            addr: map::IPU + ipu_reg::IMG_ADDR,
            value: Operand::Imm(map::IMG_BUF),
        },
        Instr::Write {
            addr: map::IPU + ipu_reg::GL_ADDR,
            value: Operand::Imm(map::GL_BUF),
        },
        Instr::Write {
            addr: map::IPU + ipu_reg::GL_SIZE,
            value: Operand::Imm(config.gallery_size),
        },
    ];
    config_writes.shuffle(&mut rng);
    if let Some(skip) = config.fault.skip_register {
        config_writes.remove(skip.min(config_writes.len() - 1));
    }
    let start_write = Instr::Write {
        addr: map::IPU + ipu_reg::CTRL,
        value: Operand::Imm(1),
    };
    if config.fault.early_start && !config_writes.is_empty() {
        // Start before the final configuration write.
        let last = config_writes.pop().expect("non-empty");
        program.extend(config_writes.iter().copied());
        program.push(start_write);
        program.push(last);
    } else {
        program.extend(config_writes.iter().copied());
        program.push(start_write);
        if config.fault.double_start {
            program.push(start_write);
        }
    }

    if config.fault.double_start && config.fault.early_start {
        program.push(start_write);
    }

    // Wait for the IPU unless it will never answer (dropped interrupt
    // would hang the CPU; the monitors flag the miss either way).
    if !config.fault.drop_irq {
        program.push(Instr::WaitIrq { mask: irq::IPU });
        program.push(Instr::Read {
            addr: map::IPU + ipu_reg::STATUS,
            reg: 1,
        });
        program.push(Instr::Write {
            addr: map::LCDC,
            value: Operand::Reg(1),
        });
        // Open the lock on a match (status 2), then close it again.
        let after_lock = program.len() + 5;
        program.push(Instr::BranchIfEq {
            reg: 1,
            value: 2,
            target: program.len() + 2,
        });
        program.push(Instr::Goto(after_lock));
        program.push(Instr::Write {
            addr: map::LOCK,
            value: Operand::Imm(1),
        });
        program.push(Instr::Delay {
            lo: SimTime::from_us(5),
            hi: SimTime::from_us(10),
        });
        program.push(Instr::Write {
            addr: map::LOCK,
            value: Operand::Imm(0),
        });
        debug_assert_eq!(after_lock, program.len());
    }
    program.push(Instr::Goto(loop_start));

    Firmware::new("face-recognition", program)
}

/// The two case-study properties, over the scenario's parameters —
/// `(label, source text)` pairs, in attachment order. Public so campaign
/// layers (e.g. `lomon-smc`) can monitor the same rulebook through their
/// own engine instead of the hub's per-run monitors.
pub fn case_study_properties(config: &ScenarioConfig) -> Vec<(String, String)> {
    let gl = config.gallery_size;
    let budget_ns = config.budget.as_ns();
    vec![
        (
            "example2".to_owned(),
            "all{set_imgAddr, set_glAddr, set_glSize} << start repeated".to_owned(),
        ),
        (
            "example3".to_owned(),
            format!("start => read_img[{gl},{gl}] < set_irq within {budget_ns} ns"),
        ),
    ]
}

/// Run one scenario to quiescence and report.
///
/// # Panics
///
/// Panics if the built-in properties fail to parse or validate (that would
/// be a bug, not a user error).
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioReport {
    let mut voc = Vocabulary::new();
    let names = EventNames::intern(&mut voc);

    // Attach the two case-study monitors.
    let mut monitors = Vec::new();
    if config.monitors {
        for (label, text) in case_study_properties(config) {
            let property = parse_property(&text, &mut voc).expect("scenario property parses");
            let monitor = build_monitor(property, &voc).expect("scenario property is well-formed");
            monitors.push((label, monitor));
        }
    }
    let hub = ObservationHub::new(voc);
    for (label, monitor) in monitors {
        hub.attach(label, Box::new(monitor));
    }

    let firmware = case_study_firmware(config);
    let platform = Platform::build(hub.clone(), names, &firmware, config.timing, config.fault);

    let mut sim = Simulator::new(config.seed);
    platform.boot(sim.kernel(), config.gallery_size);
    // Button presses spaced far enough apart for an episode to finish.
    for k in 0..config.captures {
        platform.press_button_in(
            sim.kernel(),
            SimTime::from_us(10) + SimTime::from_ms(u64::from(k)),
        );
    }
    // Run to quiescence, bounded far beyond the last episode.
    let horizon = SimTime::from_ms(u64::from(config.captures) + 10);
    sim.run_until(horizon);

    let verdicts = hub.finish(sim.kernel());
    ScenarioReport {
        verdicts,
        violation: hub.first_violation(),
        trace: hub.trace(),
        vocabulary: hub.vocabulary(),
        end_time: sim.now(),
        stats: sim.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scenario_satisfies_both_properties() {
        for seed in [1, 2, 3, 4, 5] {
            let report = run_scenario(&ScenarioConfig::nominal(seed));
            assert!(
                report.all_ok(),
                "seed {seed}: {:?}\n{}",
                report.verdicts,
                report.violation.unwrap_or_default()
            );
            // Two full episodes happened.
            let voc = &report.vocabulary;
            let start = voc.lookup("start").unwrap();
            assert_eq!(report.trace.names().filter(|n| *n == start).count(), 2);
        }
    }

    #[test]
    fn skipped_register_violates_example2() {
        let config = ScenarioConfig::nominal(7).with_fault(FaultPlan {
            skip_register: Some(1),
            ..FaultPlan::default()
        });
        let report = run_scenario(&config);
        let ex2 = report
            .verdicts
            .iter()
            .find(|(l, _)| l == "example2")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(ex2, Verdict::Violated, "{:?}", report.verdicts);
        assert!(report.violation.unwrap().contains("example2"));
    }

    #[test]
    fn early_start_violates_example2() {
        let config = ScenarioConfig::nominal(8).with_fault(FaultPlan {
            early_start: true,
            ..FaultPlan::default()
        });
        let report = run_scenario(&config);
        let ex2 = report
            .verdicts
            .iter()
            .find(|(l, _)| l == "example2")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(ex2, Verdict::Violated);
    }

    #[test]
    fn dropped_irq_violates_example3_deadline() {
        let config = ScenarioConfig::nominal(9).with_fault(FaultPlan {
            drop_irq: true,
            ..FaultPlan::default()
        });
        let report = run_scenario(&config);
        let ex3 = report
            .verdicts
            .iter()
            .find(|(l, _)| l == "example3")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(ex3, Verdict::Violated);
    }

    #[test]
    fn early_irq_violates_example3_count() {
        let config = ScenarioConfig::nominal(10).with_fault(FaultPlan {
            early_irq: true,
            ..FaultPlan::default()
        });
        let report = run_scenario(&config);
        let ex3 = report
            .verdicts
            .iter()
            .find(|(l, _)| l == "example3")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(ex3, Verdict::Violated);
    }

    #[test]
    fn extra_reads_violate_example3() {
        let config = ScenarioConfig::nominal(11).with_fault(FaultPlan {
            extra_reads: 3,
            ..FaultPlan::default()
        });
        let report = run_scenario(&config);
        let ex3 = report
            .verdicts
            .iter()
            .find(|(l, _)| l == "example3")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(ex3, Verdict::Violated);
    }

    #[test]
    fn slowdown_misses_the_deadline() {
        let config = ScenarioConfig::nominal(12).with_fault(FaultPlan {
            slowdown: 50,
            ..FaultPlan::default()
        });
        let report = run_scenario(&config);
        let ex3 = report
            .verdicts
            .iter()
            .find(|(l, _)| l == "example3")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(ex3, Verdict::Violated);
    }

    #[test]
    fn double_start_violates_repeated_example2() {
        let config = ScenarioConfig::nominal(13).with_fault(FaultPlan {
            double_start: true,
            ..FaultPlan::default()
        });
        let report = run_scenario(&config);
        let ex2 = report
            .verdicts
            .iter()
            .find(|(l, _)| l == "example2")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(ex2, Verdict::Violated);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_scenario(&ScenarioConfig::nominal(42));
        let b = run_scenario(&ScenarioConfig::nominal(42));
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
        let c = run_scenario(&ScenarioConfig::nominal(43));
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn recorded_trace_replays_offline_with_same_verdicts() {
        let report = run_scenario(&ScenarioConfig::nominal(21));
        // Rebuild fresh monitors and replay the recorded trace.
        let mut voc = report.vocabulary.clone();
        for (label, text) in case_study_properties(&ScenarioConfig::nominal(21)) {
            let property = parse_property(&text, &mut voc).expect("parses");
            let mut monitor = build_monitor(property, &voc).expect("well-formed");
            let verdict = lomon_core::verdict::run_to_end(&mut monitor, &report.trace);
            let online = report
                .verdicts
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, v)| *v)
                .unwrap();
            assert_eq!(verdict, online, "replay mismatch for {label}");
        }
    }
}
