//! The standard generator: SplitMix64 behind the `StdRng` name.

use crate::{RngCore, SeedableRng};

/// Deterministic seeded generator (stand-in for `rand::rngs::StdRng`).
///
/// One SplitMix64 stream; the 32-byte seed is folded into the 64-bit state
/// so that `from_seed` and `seed_from_u64` agree with each other.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

/// The SplitMix64 output finalizer (a bijection on `u64`).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }
}

impl StdRng {
    /// Derive the independent child generator for `stream_id` — the "split"
    /// of SplitMix64.
    ///
    /// The child depends only on the parent's *current* state and the
    /// `stream_id`; the parent is not advanced. Callers that fan work out
    /// over threads use this to give work item `k` the stream `fork(k)`,
    /// making every item's randomness a pure function of `(master seed, k)`
    /// — independent of which worker runs it and in what order.
    ///
    /// Distinct stream ids always yield distinct child states: the id is
    /// passed through an injective affine map and the bijective SplitMix64
    /// finalizer before being folded into the state, then finalized again,
    /// so `fork(a) == fork(b)` implies `a == b` for a fixed parent.
    pub fn fork(&self, stream_id: u64) -> StdRng {
        // Salt with a constant (the fractional bits of √2, as in SHA-2) so
        // stream 0 does not collapse to re-finalizing the parent state.
        let salted = mix(stream_id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x6a09_e667_f3bc_c909));
        StdRng {
            state: mix(self.state ^ salted),
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = 0u64;
        for chunk in seed.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state = state.rotate_left(23) ^ u64::from_le_bytes(word);
        }
        StdRng { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng as _;

    /// The derived streams are part of the reproducibility contract: every
    /// per-episode seed in the workspace is `master.fork(k)`, so changing
    /// these values silently re-randomizes all campaign results. Pin them.
    #[test]
    fn forked_streams_are_pinned() {
        let master = StdRng::seed_from_u64(42);
        let expected: [(u64, u64, u64); 3] = [
            (0, 0x07e1_1374_01b2_93bb, 0x09f5_c6b4_19df_2381),
            (1, 0x99f7_935b_7196_4ca2, 0x36f9_b5ce_6413_5827),
            (2, 0xfabf_1115_59a4_a0ee, 0xa417_db14_bf71_7797),
        ];
        for (stream, first, second) in expected {
            let mut child = master.fork(stream);
            assert_eq!(child.next_u64(), first, "fork({stream}) first draw");
            assert_eq!(child.next_u64(), second, "fork({stream}) second draw");
        }
    }

    /// Forking depends only on (parent state, stream id): drawing from one
    /// child, or forking in any order, never perturbs another child.
    #[test]
    fn forks_are_independent_of_scheduling() {
        let master = StdRng::seed_from_u64(7);
        let forward: Vec<u64> = (0..8).map(|k| master.fork(k).next_u64()).collect();
        // Re-fork in reverse order, interleaving extra draws.
        let backward: Vec<u64> = (0..8)
            .rev()
            .map(|k| {
                let mut noise = master.fork(1_000 + k);
                let _ = noise.gen_range(0u32..10);
                master.fork(k).next_u64()
            })
            .collect();
        let backward: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    /// Forking does not advance the parent.
    #[test]
    fn fork_leaves_the_parent_untouched() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let _ = a.fork(3);
        let _ = a.fork(4);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Distinct streams (and the parent itself) do not collide.
    #[test]
    fn forked_streams_are_distinct() {
        let mut master = StdRng::seed_from_u64(11);
        let mut firsts: Vec<u64> = (0..64).map(|k| master.fork(k).next_u64()).collect();
        firsts.push(master.next_u64());
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 65, "fork produced a colliding stream");
    }
}
