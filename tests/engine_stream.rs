//! End-to-end tests for `lomon watch`: pipe event streams through the
//! binary's stdin and assert verdicts, exit codes and diagnostics — the
//! CLI face of the `lomon-engine` subsystem. Also covers the engine-backed
//! `lomon check` reporting *every* property error before giving up.

mod common;

use common::{fixture_text, lomon_with_stdin, stderr, stdout, FIXTURE, PROPERTY};

#[test]
fn fixture_stream_is_accepted() {
    let output = lomon_with_stdin(&["watch", PROPERTY], &fixture_text());
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let report = stderr(&output);
    assert!(
        report.contains("[presumably satisfied]"),
        "report: {report}"
    );
    assert!(report.contains("12 events"), "report: {report}");
    // A repeated antecedent never finalizes mid-stream: nothing on stdout.
    assert_eq!(stdout(&output), "");
}

#[test]
fn violating_stream_reports_offending_event() {
    // `start` before any configuration write: the violation must finalize
    // mid-stream, name the offending event, and drive a non-zero exit.
    let stream = "5ns in start\n20ns in set_imgAddr\n";
    let output = lomon_with_stdin(
        &[
            "watch",
            "all{set_imgAddr, set_glAddr, set_glSize} << start once",
        ],
        stream,
    );
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("[violated]"), "stdout: {text}");
    assert!(text.contains("`start` at 5ns"), "stdout: {text}");
    assert!(
        text.contains("set_glAddr"),
        "diagnostics list the expected names: {text}"
    );
}

#[test]
fn ndjson_stream_roundtrip() {
    let stream = concat!(
        "{\"time\": \"10ns\", \"dir\": \"in\", \"name\": \"set_imgAddr\"}\n",
        "{\"time\": \"12ns\", \"name\": \"set_glAddr\"}\n",
        "{\"time\": \"15ns\", \"name\": \"set_glSize\"}\n",
        "{\"time\": \"20ns\", \"name\": \"start\"}\n",
        "{\"end\": \"100ns\"}\n",
    );
    let output = lomon_with_stdin(
        &[
            "watch",
            "--format",
            "ndjson",
            "all{set_imgAddr, set_glAddr, set_glSize} << start once",
        ],
        stream,
    );
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(
        text.contains("\"verdict\": \"satisfied\""),
        "stdout: {text}"
    );
    assert!(text.contains("\"summary\": true"), "stdout: {text}");
    assert!(text.contains("\"violations\": 0"), "stdout: {text}");
}

#[test]
fn ndjson_violation_carries_diagnostic() {
    let stream = "{\"time\": \"5ns\", \"name\": \"start\"}\n";
    let output = lomon_with_stdin(
        &[
            "watch",
            "--format=ndjson",
            "all{set_imgAddr, set_glAddr} << start once",
        ],
        stream,
    );
    assert_eq!(output.status.code(), Some(1));
    let text = stdout(&output);
    assert!(text.contains("\"verdict\": \"violated\""), "stdout: {text}");
    assert!(
        text.contains("\"diagnostic\": \"`start` at 5ns"),
        "stdout: {text}"
    );
    assert!(text.contains("\"violations\": 1"), "stdout: {text}");
}

#[test]
fn ndjson_reports_unfinalized_verdicts_at_end() {
    // A repeated antecedent never finalizes; the NDJSON consumer must
    // still get one verdict line per property before the summary.
    let stream = concat!(
        "{\"time\": \"10ns\", \"name\": \"dma_setup\"}\n",
        "{\"time\": \"20ns\", \"name\": \"dma_go\"}\n",
    );
    let output = lomon_with_stdin(
        &[
            "watch",
            "--format",
            "ndjson",
            "dma_setup << dma_go repeated",
        ],
        stream,
    );
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(
        text.contains("\"verdict\": \"presumably satisfied\", \"final\": false"),
        "stdout: {text}"
    );
    assert!(text.contains("\"summary\": true"), "stdout: {text}");
}

#[test]
fn timed_deadline_expires_at_stream_end() {
    let stream = "10ns in go\nend 500ns\n";
    let output = lomon_with_stdin(&["watch", "go => out:done within 50 ns"], stream);
    assert_eq!(output.status.code(), Some(1));
    let report = stderr(&output);
    assert!(report.contains("[violated]"), "report: {report}");
    assert!(report.contains("deadline"), "report: {report}");
}

#[test]
fn multiple_properties_stream_together() {
    let output = lomon_with_stdin(
        &["watch", PROPERTY, "start << set_imgAddr once"],
        &fixture_text(),
    );
    // The second property is violated by the fixture (a write precedes the
    // first start); the first stays fine.
    assert_eq!(output.status.code(), Some(1));
    let report = stderr(&output);
    assert!(
        report.contains("[presumably satisfied]"),
        "report: {report}"
    );
    assert!(stdout(&output).contains("[violated]"));
    assert!(report.contains("dispatch:"), "report: {report}");
}

#[test]
fn malformed_stream_line_is_skipped_by_default() {
    // A bad line is counted and skipped; the stream keeps flowing and the
    // healthy lines still produce their verdicts.
    let stream = "banana in start\n5ns in start\n20ns in set_imgAddr\n";
    let output = lomon_with_stdin(
        &[
            "watch",
            "all{set_imgAddr, set_glAddr, set_glSize} << start once",
        ],
        stream,
    );
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    let report = stderr(&output);
    assert!(
        report.contains("warning: stream line 1"),
        "stderr: {report}"
    );
    assert!(
        report.contains("1 malformed line(s) skipped"),
        "stderr: {report}"
    );
    assert!(stdout(&output).contains("[violated]"));

    // NDJSON mode: the error record is itself an NDJSON line on stdout,
    // and the summary counts it.
    let output = lomon_with_stdin(
        &["watch", "--format", "ndjson", PROPERTY],
        "{\"time\": \"10ns\"}\n",
    );
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("\"type\": \"error\""), "stdout: {text}");
    assert!(text.contains("\"line\": 1"), "stdout: {text}");
    assert!(text.contains("missing `name` field"), "stdout: {text}");
    assert!(text.contains("\"parse_errors\": 1"), "stdout: {text}");
}

#[test]
fn strict_makes_malformed_lines_fatal() {
    let output = lomon_with_stdin(&["watch", "--strict", PROPERTY], "banana in start\n");
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("stream line 1"));

    let output = lomon_with_stdin(
        &["watch", "--strict", "--format", "ndjson", PROPERTY],
        "{\"time\": \"10ns\"}\n",
    );
    assert_eq!(output.status.code(), Some(2));
    let text = stderr(&output);
    assert!(text.contains("missing `name` field"), "stderr: {text}");
}

#[test]
fn time_travel_in_stream_is_skipped_or_fatal() {
    // Default: the out-of-order line is skipped with a warning.
    let output = lomon_with_stdin(&["watch", PROPERTY], "10ns in noise\n5ns in noise\n");
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stderr(&output).contains("precedes"));

    // Strict: it kills the run with exit 2.
    let output = lomon_with_stdin(
        &["watch", "--strict", PROPERTY],
        "10ns in noise\n5ns in noise\n",
    );
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("precedes"));
}

#[test]
fn watch_usage_errors() {
    // No properties at all.
    let output = lomon_with_stdin(&["watch"], "");
    assert_eq!(output.status.code(), Some(2));
    // Flags but no property.
    let output = lomon_with_stdin(&["watch", "--format", "ndjson"], "");
    assert_eq!(output.status.code(), Some(2));
    // Unknown format.
    let output = lomon_with_stdin(&["watch", "--format", "xml", PROPERTY], "");
    assert_eq!(output.status.code(), Some(2));
    // Unknown flag.
    let output = lomon_with_stdin(&["watch", "--frobnicate", PROPERTY], "");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn watch_reports_every_bad_property() {
    let output = lomon_with_stdin(
        &["watch", "all{unclosed << start", PROPERTY, "a << a once"],
        "",
    );
    assert_eq!(output.status.code(), Some(1));
    let text = stderr(&output);
    assert!(text.contains("property 1"), "stderr: {text}");
    assert!(text.contains("property 3"), "stderr: {text}");
    assert!(text.contains("ill-formed"), "stderr: {text}");
}

#[test]
fn check_reports_every_bad_property_then_none_of_the_stats() {
    // Satellite: `lomon check` must validate the whole property set first
    // and report each failure with its source context.
    let output = lomon_with_stdin(
        &["check", FIXTURE, "all{unclosed << start", "b << b once"],
        "",
    );
    assert_eq!(output.status.code(), Some(1));
    let text = stderr(&output);
    assert!(text.contains("error in property"), "stderr: {text}");
    assert!(text.contains("property 1"), "stderr: {text}");
    assert!(text.contains("property 2"), "stderr: {text}");
    assert!(text.contains('^'), "caret line into the source: {text}");
    // No half-reported run: stats come only with a fully valid rulebook.
    assert!(
        !stdout(&output).contains("events"),
        "stdout: {}",
        stdout(&output)
    );
}

#[test]
fn check_reports_dispatch_stats() {
    let output = lomon_with_stdin(&["check", FIXTURE, PROPERTY], "");
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("dispatch:"), "stdout: {text}");
    assert!(text.contains("12 events"), "stdout: {text}");
}
