//! # lomon-smc — parallel statistical model checking of loose-ordering
//! properties
//!
//! The paper monitors one SystemC/TLM execution; this crate scales the
//! question up, following Ngo & Legay's statistical model checking of
//! SystemC designs: run **many** seed-randomized executions of the virtual
//! platform, monitor every episode's event stream with the `lomon-engine`
//! subsystem, and aggregate the per-episode Bernoulli verdicts into
//! *quantitative* answers —
//!
//! * **estimation** ([`estimate`]): the satisfaction probability of each
//!   property with a Chernoff–Hoeffding confidence interval, sized a
//!   priori by the Okamoto bound;
//! * **hypothesis testing** ([`sprt`]): Wald's sequential probability
//!   ratio test (`H0: p ≥ p0` vs `H1: p ≤ p1`) with early stopping, for
//!   the qualitative "often enough?" question at a fraction of the
//!   fixed-size episode cost.
//!
//! A [`Campaign`] shards episodes across `std::thread` workers, each
//! owning one engine [`lomon_engine::Session`] that is
//! [`reset`](lomon_engine::Session::reset) between episodes — compile
//! once, simulate and monitor millions of times. Episode `k` draws all of
//! its randomness from the forked RNG stream `master.fork(k)`, so
//! **reports are identical for every worker count**; `lomon smc --jobs`
//! only changes wall-clock time (measured and gated by
//! `crates/bench/src/bin/smc_scaling.rs`).
//!
//! ## Example
//!
//! Estimate how often the platform still satisfies the case-study
//! properties when every fifth episode injects a random fault:
//!
//! ```
//! use lomon_smc::{Campaign, CampaignConfig, ScenarioModel};
//! use lomon_tlm::scenario::ScenarioConfig;
//!
//! let model = ScenarioModel::new(ScenarioConfig::nominal(1))
//!     .with_fault_probability(0.2);
//! let campaign = Campaign::new(&model, CampaignConfig::estimate(42, 32))
//!     .expect("case-study properties compile");
//! let report = campaign.run();
//! assert_eq!(report.episodes, 32);
//! for estimate in &report.properties {
//!     let (lo, hi) = estimate.interval();
//!     assert!(lo <= estimate.mean && estimate.mean <= hi);
//! }
//! ```

pub mod campaign;
pub mod estimate;
pub mod metrics;
pub mod model;
pub mod sprt;

pub use campaign::{
    effective_jobs, Campaign, CampaignConfig, CampaignError, CampaignMode, CampaignProgress,
    CampaignReport, PropertyEstimate, SprtReport,
};
pub use lomon_engine::Backend;
pub use metrics::CampaignMetrics;
pub use model::{EpisodeModel, GenModel, ScenarioModel};
pub use sprt::{Sprt, SprtConfig, SprtDecision};
