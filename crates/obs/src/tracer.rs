//! Span tracing: Chrome trace-event JSON for offline timeline analysis.
//!
//! A [`Tracer`] collects *complete* (`"ph": "X"`) trace events — named,
//! categorized spans with microsecond start/duration — and renders them as
//! the JSON object format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev). The CLI's `lomon profile` wraps its
//! compile/ingest/finish phases in spans and writes the file with
//! `--trace-out`; any other caller can do the same around its own phases.
//!
//! Like the rest of this crate, tracing is strictly additive: a span is a
//! [`SpanGuard`] that records itself on drop, so instrumented code reads
//! as straight-line code and an absent tracer costs nothing (no guard, no
//! clock reads).

use std::sync::Mutex;
use std::time::Instant;

use crate::registry::json_escape;

/// One finished span: a Chrome trace-event `"X"` (complete) record.
#[derive(Debug, Clone)]
struct SpanRecord {
    name: String,
    category: &'static str,
    /// Start, µs since the tracer's epoch.
    start_us: u64,
    /// Duration, µs (Chrome truncates sub-µs durations to 0; keep spans
    /// coarse — phases and batches, not per-event work).
    dur_us: u64,
}

/// A collector of timed spans, rendered as Chrome trace-event JSON.
///
/// Interior-mutable (a mutex around the span list) so one tracer can be
/// shared by reference across phases without threading `&mut` through
/// every call site. Span recording is off the hot path by construction:
/// one lock per *span*, not per event.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh tracer; all span timestamps are relative to this moment.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Start a span. The span records itself into the tracer when the
    /// returned guard is dropped (or explicitly [`SpanGuard::finish`]ed).
    pub fn span(&self, name: impl Into<String>, category: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name: name.into(),
            category,
            started: Instant::now(),
            armed: true,
        }
    }

    /// Number of finished spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("tracer lock").len()
    }

    /// Whether no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record(&self, name: String, category: &'static str, started: Instant) {
        let start_us = saturating_us(started.duration_since(self.epoch).as_micros());
        let dur_us = saturating_us(started.elapsed().as_micros());
        self.spans.lock().expect("tracer lock").push(SpanRecord {
            name,
            category,
            start_us,
            dur_us,
        });
    }

    /// Render every finished span as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
    /// Perfetto. Spans appear in finish order; the viewers sort by
    /// timestamp themselves.
    pub fn render_json(&self) -> String {
        let spans = self.spans.lock().expect("tracer lock");
        let mut out = String::from("{\"traceEvents\": [");
        for (k, s) in spans.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": 1}}",
                json_escape(&s.name),
                json_escape(s.category),
                s.start_us,
                s.dur_us,
            ));
        }
        out.push_str("]}");
        out
    }
}

fn saturating_us(us: u128) -> u64 {
    u64::try_from(us).unwrap_or(u64::MAX)
}

/// A running span; see [`Tracer::span`].
#[derive(Debug)]
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    name: String,
    category: &'static str,
    started: Instant,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Finish the span now instead of at end of scope.
    pub fn finish(mut self) {
        self.armed = false;
        self.tracer
            .record(std::mem::take(&mut self.name), self.category, self.started);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.tracer
                .record(std::mem::take(&mut self.name), self.category, self.started);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_and_on_finish() {
        let tracer = Tracer::new();
        assert!(tracer.is_empty());
        {
            let _compile = tracer.span("compile", "phase");
        }
        tracer.span("ingest", "phase").finish();
        assert_eq!(tracer.len(), 2);
    }

    #[test]
    fn render_is_chrome_trace_shaped() {
        let tracer = Tracer::new();
        tracer.span("a \"quoted\" phase", "phase").finish();
        let json = tracer.render_json();
        assert!(json.starts_with("{\"traceEvents\": ["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(
            json.contains("\"name\": \"a \\\"quoted\\\" phase\""),
            "{json}"
        );
        assert!(json.contains("\"pid\": 1"), "{json}");
    }

    #[test]
    fn empty_tracer_renders_empty_list() {
        assert_eq!(Tracer::new().render_json(), "{\"traceEvents\": []}");
    }
}
