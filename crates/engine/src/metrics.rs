//! Telemetry sink for [`Session`](crate::Session)s: the engine-level
//! metric families and the watermark bookkeeping that turns cumulative
//! [`DispatchStats`](crate::DispatchStats) into per-batch deltas.
//!
//! Instrumentation follows the non-intrusive-observation principle: the
//! dispatch hot loops are untouched. A session with a sink attached
//! flushes *deltas at batch boundaries* (end of `ingest`/`ingest_batch`/
//! `advance_time`/`close`, and just before `reset`), so the per-event cost
//! of a live registry is a few relaxed atomic adds amortized over the
//! whole batch — gated at ≤ 1.10× the uninstrumented fused hot path by
//! `obs_overhead --check` in `lomon-bench`.

use std::sync::Arc;

use lomon_core::verdict::Verdict;
use lomon_obs::{Counter, Gauge, Registry};

/// The engine's metric families, registered once per registry and shared
/// by every session attached to it (deltas add up across sessions and
/// across SMC workers).
#[derive(Debug)]
pub struct SessionMetrics {
    /// `lomon_events_total`: events ingested.
    pub events: Arc<Counter>,
    /// `lomon_monitor_steps_total`: monitor steps performed.
    pub monitor_steps: Arc<Counter>,
    /// `lomon_steps_skipped_total`: live-monitor steps the index avoided.
    pub steps_skipped: Arc<Counter>,
    /// `lomon_shared_hits_total`: properties served by a fused step beyond
    /// the first.
    pub shared_hits: Arc<Counter>,
    /// `lomon_retirements_total`: units retired (verdict went final).
    pub retirements: Arc<Counter>,
    /// `lomon_streams_total`: streams closed (one per `close`/`finish`).
    pub streams: Arc<Counter>,
    /// `lomon_properties_live`: live (not retired) properties of the most
    /// recently flushed session.
    pub properties_live: Arc<Gauge>,
    /// `lomon_verdicts_total{verdict=…}`: per-property final-report
    /// verdicts by kind, counted once per closed stream. Indexed by
    /// [`verdict_slot`].
    pub verdicts: [Arc<Counter>; 4],
}

/// The `verdicts` array slot for a verdict kind.
fn verdict_slot(verdict: Verdict) -> usize {
    match verdict {
        Verdict::Satisfied => 0,
        Verdict::PresumablySatisfied => 1,
        Verdict::Pending => 2,
        Verdict::Violated => 3,
    }
}

const VERDICT_LABELS: [&str; 4] = ["satisfied", "presumably satisfied", "pending", "violated"];

impl SessionMetrics {
    /// Register (or fetch) the engine metric families in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        let verdicts = std::array::from_fn(|slot| {
            registry.counter_with(
                "lomon_verdicts_total",
                "Per-property verdicts at stream close, by kind",
                vec![("verdict", VERDICT_LABELS[slot].to_owned())],
            )
        });
        Arc::new(SessionMetrics {
            events: registry.counter("lomon_events_total", "Events ingested"),
            monitor_steps: registry.counter(
                "lomon_monitor_steps_total",
                "Monitor steps performed (observe and deadline sweeps)",
            ),
            steps_skipped: registry.counter(
                "lomon_steps_skipped_total",
                "Live-monitor steps avoided by event-indexed dispatch",
            ),
            shared_hits: registry.counter(
                "lomon_shared_hits_total",
                "Properties served by a shared fused step beyond the first",
            ),
            retirements: registry.counter(
                "lomon_retirements_total",
                "Properties retired (verdict went final before close)",
            ),
            streams: registry.counter("lomon_streams_total", "Event streams closed"),
            properties_live: registry.gauge(
                "lomon_properties_live",
                "Live (not yet final) properties of the last flushed session",
            ),
            verdicts,
        })
    }

    /// The counter for one verdict kind.
    pub fn verdict_counter(&self, verdict: Verdict) -> &Counter {
        &self.verdicts[verdict_slot(verdict)]
    }
}

/// A session's attachment to a [`SessionMetrics`] bundle: the shared
/// counters plus the high-water marks already flushed, so each flush adds
/// only the delta since the previous one.
#[derive(Debug, Clone)]
pub(crate) struct MetricsSink {
    pub(crate) metrics: Arc<SessionMetrics>,
    pub(crate) flushed: FlushedMarks,
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FlushedMarks {
    pub(crate) events: u64,
    pub(crate) monitor_steps: u64,
    pub(crate) steps_skipped: u64,
    pub(crate) shared_hits: u64,
    pub(crate) retired: u64,
}

impl MetricsSink {
    pub(crate) fn new(metrics: Arc<SessionMetrics>) -> Self {
        MetricsSink {
            metrics,
            flushed: FlushedMarks::default(),
        }
    }
}
