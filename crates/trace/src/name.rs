//! Interned interface names and the vocabulary that owns them.
//!
//! The paper's patterns are written on the vocabulary of the input/output
//! interface `(I, O)` of a component (Section 4). A [`Vocabulary`] interns
//! strings into compact [`Name`] handles and records, for each name, whether
//! it is an input or an output of the monitored component — the grammar's
//! side conditions (`i ∈ I`, `α(Q) ⊆ O`) are checked against this
//! classification.

use std::fmt;

/// Whether an interface name is an input or an output of the monitored
/// component.
///
/// The paper (Section 3): "an input of the IPU is any action of the other
/// components that affects the IPU […]; output is any activity performed by
/// the IPU that affects other components".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// An action of the environment observed by the component (e.g.
    /// `set_imgAddr`, `start`).
    Input,
    /// An activity performed by the component (e.g. `read_img`, `set_irq`).
    Output,
}

impl Direction {
    /// Short lowercase label used by the trace text format.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Input => "in",
            Direction::Output => "out",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A cheap, copyable handle for one interned interface name.
///
/// `Name`s are only meaningful relative to the [`Vocabulary`] that produced
/// them; use [`Vocabulary::resolve`] to get the string back.
///
/// # Example
///
/// ```
/// use lomon_trace::{Direction, Vocabulary};
/// let mut voc = Vocabulary::new();
/// let n = voc.intern("start", Direction::Input);
/// assert_eq!(voc.resolve(n), "start");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(u32);

impl Name {
    /// The dense index of this name inside its vocabulary (0-based intern
    /// order). Useful for index-based lookup tables in monitors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a name from a dense index previously obtained with
    /// [`Name::index`].
    ///
    /// This performs no validation; resolving a fabricated name against the
    /// wrong vocabulary panics.
    pub fn from_index(index: usize) -> Self {
        Name(index as u32)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

/// String interner and input/output classifier for interface names.
///
/// A vocabulary is append-only: interning the same string twice returns the
/// same [`Name`]. Re-interning with a *different* [`Direction`] keeps the
/// original direction (first writer wins) — interfaces do not change
/// direction mid-run — and the mismatch can be detected with
/// [`Vocabulary::direction`].
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    names: Vec<String>,
    directions: Vec<Direction>,
    index: ByteIndex,
}

/// Open-addressed byte-keyed index from name bytes to dense name ids.
///
/// This is the "precomputed byte-keyed table" behind
/// [`Vocabulary::lookup_bytes`]: keys are hashed with FNV-1a over the raw
/// bytes (no `String` construction, no `SipHash` state) and probed linearly
/// in a power-of-two slot array. The table stores only `u32` name ids;
/// key bytes are resolved against the vocabulary's own `names` vector, so
/// the read side touches one small contiguous allocation. The table is
/// maintained incrementally by [`Vocabulary::intern`] — a vocabulary that
/// has stopped interning (the rulebook is compiled, the alphabet is fixed)
/// is exactly the frozen read-side view the wire-speed decode path wants.
#[derive(Debug, Clone, Default)]
struct ByteIndex {
    /// Power-of-two slot array; `EMPTY_SLOT` marks a free slot, anything
    /// else is a dense name id.
    slots: Vec<u32>,
    /// Number of occupied slots.
    len: usize,
}

const EMPTY_SLOT: u32 = u32::MAX;

/// FNV-1a over raw bytes: two arithmetic ops per byte, no per-lookup
/// hasher state, good enough dispersion for short identifier-like keys.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl ByteIndex {
    /// Find the name id stored for `key`, resolving collisions against the
    /// backing `names` vector.
    #[inline]
    fn get(&self, key: &[u8], names: &[String]) -> Option<Name> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = (fnv1a(key) as usize) & mask;
        loop {
            let id = self.slots[slot];
            if id == EMPTY_SLOT {
                return None;
            }
            if names[id as usize].as_bytes() == key {
                return Some(Name(id));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Insert the id of the freshly pushed last entry of `names`,
    /// growing/rehashing at 3/4 load.
    fn insert_last(&mut self, names: &[String]) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(names);
        }
        let id = (names.len() - 1) as u32;
        let key = names[id as usize].as_bytes();
        let mask = self.slots.len() - 1;
        let mut slot = (fnv1a(key) as usize) & mask;
        while self.slots[slot] != EMPTY_SLOT {
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = id;
        self.len += 1;
    }

    /// Rebuild the slot array at double capacity. Only the dense prefix of
    /// already-indexed names (`0..self.len`, by construction every id
    /// interned so far) is reinserted — a caller may have pushed the next
    /// name onto `names` already.
    fn grow(&mut self, names: &[String]) {
        let new_cap = (self.slots.len() * 2).max(16);
        self.slots.clear();
        self.slots.resize(new_cap, EMPTY_SLOT);
        let mask = new_cap - 1;
        for (id, name) in names.iter().take(self.len).enumerate() {
            let mut slot = (fnv1a(name.as_bytes()) as usize) & mask;
            while self.slots[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = id as u32;
        }
    }
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text` as a name with the given direction, returning the
    /// existing handle if `text` was interned before.
    pub fn intern(&mut self, text: &str, direction: Direction) -> Name {
        if let Some(name) = self.index.get(text.as_bytes(), &self.names) {
            return name;
        }
        let name = Name(self.names.len() as u32);
        self.names.push(text.to_owned());
        self.directions.push(direction);
        self.index.insert_last(&self.names);
        name
    }

    /// Intern an input name (shorthand for [`Vocabulary::intern`] with
    /// [`Direction::Input`]).
    pub fn input(&mut self, text: &str) -> Name {
        self.intern(text, Direction::Input)
    }

    /// Intern an output name (shorthand for [`Vocabulary::intern`] with
    /// [`Direction::Output`]).
    pub fn output(&mut self, text: &str) -> Name {
        self.intern(text, Direction::Output)
    }

    /// Look up a previously interned name without inserting.
    pub fn lookup(&self, text: &str) -> Option<Name> {
        self.lookup_bytes(text.as_bytes())
    }

    /// Look up a previously interned name by its raw bytes, without
    /// inserting and without constructing a `String` or `&str`.
    ///
    /// This is the frozen read-side view used by the wire-speed decode
    /// path: once a rulebook is compiled the vocabulary stops growing, and
    /// streaming decoders resolve event names straight from the input
    /// buffer into pre-resolved `u32` [`Name`] ids via the precomputed
    /// byte-keyed table (FNV-1a + linear probing — no allocation, no
    /// `SipHash`).
    ///
    /// # Example
    ///
    /// ```
    /// use lomon_trace::Vocabulary;
    /// let mut voc = Vocabulary::new();
    /// let start = voc.input("start");
    /// assert_eq!(voc.lookup_bytes(b"start"), Some(start));
    /// assert_eq!(voc.lookup_bytes(b"stop"), None);
    /// ```
    #[inline]
    pub fn lookup_bytes(&self, bytes: &[u8]) -> Option<Name> {
        self.index.get(bytes, &self.names)
    }

    /// The string for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` does not belong to this vocabulary.
    pub fn resolve(&self, name: Name) -> &str {
        &self.names[name.index()]
    }

    /// The direction recorded for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` does not belong to this vocabulary.
    pub fn direction(&self, name: Name) -> Direction {
        self.directions[name.index()]
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all names in intern order.
    pub fn iter(&self) -> impl Iterator<Item = Name> + '_ {
        (0..self.names.len() as u32).map(Name)
    }

    /// Render a name set as `{a, b, c}` (sorted by intern order) for
    /// diagnostics.
    pub fn display_set(&self, set: &NameSet) -> String {
        let mut out = String::from("{");
        for (k, name) in set.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(self.resolve(name));
        }
        out.push('}');
        out
    }
}

/// A set of [`Name`]s backed by a bit vector.
///
/// Monitors consult name sets (the recognition context `B, C, Ac, Af` of the
/// paper's Fig. 5) on every event, so membership must be O(1) and allocation
/// free. Names intern densely from zero, which makes a bitset the natural
/// representation.
///
/// # Example
///
/// ```
/// use lomon_trace::{Direction, NameSet, Vocabulary};
/// let mut voc = Vocabulary::new();
/// let a = voc.input("a");
/// let b = voc.input("b");
/// let mut set = NameSet::new();
/// set.insert(a);
/// assert!(set.contains(a) && !set.contains(b));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct NameSet {
    bits: Vec<u64>,
}

impl NameSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a name. Returns `true` if it was not already present.
    pub fn insert(&mut self, name: Name) -> bool {
        let (word, bit) = (name.index() / 64, name.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let had = self.bits[word] & (1 << bit) != 0;
        self.bits[word] |= 1 << bit;
        !had
    }

    /// Remove a name. Returns `true` if it was present.
    pub fn remove(&mut self, name: Name) -> bool {
        let (word, bit) = (name.index() / 64, name.index() % 64);
        if word >= self.bits.len() {
            return false;
        }
        let had = self.bits[word] & (1 << bit) != 0;
        self.bits[word] &= !(1 << bit);
        had
    }

    /// Membership test.
    pub fn contains(&self, name: Name) -> bool {
        let (word, bit) = (name.index() / 64, name.index() % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of names in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterate over members in increasing intern order.
    pub fn iter(&self) -> impl Iterator<Item = Name> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |bit| {
                if w & (1u64 << bit) != 0 {
                    Some(Name::from_index(wi * 64 + bit))
                } else {
                    None
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NameSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (dst, src) in self.bits.iter_mut().zip(&other.bits) {
            *dst |= src;
        }
    }

    /// Whether `self` and `other` share at least one name.
    pub fn intersects(&self, other: &NameSet) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &NameSet) -> bool {
        self.bits
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.bits.get(i).copied().unwrap_or(0) == 0)
    }
}

impl fmt::Debug for NameSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Name> for NameSet {
    fn from_iter<T: IntoIterator<Item = Name>>(iter: T) -> Self {
        let mut set = NameSet::new();
        for n in iter {
            set.insert(n);
        }
        set
    }
}

impl Extend<Name> for NameSet {
    fn extend<T: IntoIterator<Item = Name>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut voc = Vocabulary::new();
        let a1 = voc.intern("start", Direction::Input);
        let a2 = voc.intern("start", Direction::Input);
        assert_eq!(a1, a2);
        assert_eq!(voc.len(), 1);
    }

    #[test]
    fn first_direction_wins() {
        let mut voc = Vocabulary::new();
        let n = voc.intern("irq", Direction::Output);
        let same = voc.intern("irq", Direction::Input);
        assert_eq!(n, same);
        assert_eq!(voc.direction(n), Direction::Output);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut voc = Vocabulary::new();
        let names: Vec<_> = ["a", "b", "c_long_name"]
            .iter()
            .map(|s| voc.input(s))
            .collect();
        for (i, text) in ["a", "b", "c_long_name"].iter().enumerate() {
            assert_eq!(voc.resolve(names[i]), *text);
            assert_eq!(voc.lookup(text), Some(names[i]));
        }
        assert_eq!(voc.lookup("missing"), None);
    }

    #[test]
    fn lookup_bytes_matches_lookup_across_growth() {
        let mut voc = Vocabulary::new();
        // Push through several ByteIndex rehashes.
        let names: Vec<_> = (0..300).map(|i| voc.input(&format!("name_{i}"))).collect();
        for (i, n) in names.iter().enumerate() {
            let text = format!("name_{i}");
            assert_eq!(voc.lookup(&text), Some(*n));
            assert_eq!(voc.lookup_bytes(text.as_bytes()), Some(*n));
        }
        assert_eq!(voc.lookup_bytes(b"name_300"), None);
        assert_eq!(voc.lookup_bytes(b""), None);
        let empty = Vocabulary::new();
        assert_eq!(empty.lookup_bytes(b"anything"), None);
    }

    #[test]
    fn name_index_roundtrip() {
        let mut voc = Vocabulary::new();
        let n = voc.input("x");
        assert_eq!(Name::from_index(n.index()), n);
    }

    #[test]
    fn vocabulary_iter_in_order() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let collected: Vec<_> = voc.iter().collect();
        assert_eq!(collected, vec![a, b]);
    }

    #[test]
    fn nameset_insert_contains_remove() {
        let mut voc = Vocabulary::new();
        // Force a second bitset word by interning > 64 names.
        let names: Vec<_> = (0..70).map(|i| voc.input(&format!("n{i}"))).collect();
        let mut set = NameSet::new();
        assert!(set.insert(names[0]));
        assert!(!set.insert(names[0]));
        assert!(set.insert(names[69]));
        assert!(set.contains(names[0]) && set.contains(names[69]));
        assert!(!set.contains(names[1]));
        assert_eq!(set.len(), 2);
        assert!(set.remove(names[0]));
        assert!(!set.remove(names[0]));
        assert!(!set.contains(names[0]));
    }

    #[test]
    fn nameset_iter_sorted() {
        let mut voc = Vocabulary::new();
        let names: Vec<_> = (0..5).map(|i| voc.input(&format!("n{i}"))).collect();
        let set: NameSet = [names[4], names[1], names[2]].into_iter().collect();
        let out: Vec<_> = set.iter().collect();
        assert_eq!(out, vec![names[1], names[2], names[4]]);
    }

    #[test]
    fn nameset_union_and_intersects() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.input("b");
        let c = voc.input("c");
        let mut s1: NameSet = [a].into_iter().collect();
        let s2: NameSet = [b, c].into_iter().collect();
        assert!(!s1.intersects(&s2));
        s1.union_with(&s2);
        assert!(s1.contains(b) && s1.contains(c));
        assert!(s1.intersects(&s2));
        assert!(s2.is_subset(&s1));
        assert!(!s1.is_subset(&s2));
    }

    #[test]
    fn nameset_empty_properties() {
        let set = NameSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.iter().count(), 0);
        let other = NameSet::new();
        assert!(set.is_subset(&other));
        assert!(!set.intersects(&other));
    }

    #[test]
    fn display_set_renders_sorted_names() {
        let mut voc = Vocabulary::new();
        let a = voc.input("alpha");
        let b = voc.input("beta");
        let set: NameSet = [b, a].into_iter().collect();
        assert_eq!(voc.display_set(&set), "{alpha, beta}");
    }
}
