//! Fused rulebook programs: whole-rulebook lowering with cross-property
//! cell sharing.
//!
//! [`crate::compiled`] lowers **one** property into a flat cell arena plus a
//! dense event→action table. That construction is exactly the paper's
//! per-property recognizer, and it leaves an obvious redundancy on the
//! table: real rulebooks watch a *shared* interface, so many properties are
//! structurally identical (the same ranges over the same names, the same
//! trigger, the same connectives) and every one of them re-recognizes the
//! same event structure independently. Fifty overlapping properties cost
//! fifty full monitor steps per event even when only a handful of *distinct*
//! recognizers exist among them.
//!
//! [`FusedProgram::fuse`] lowers the **whole rulebook at once**: the
//! per-property [`CompiledProgram`]s are interned into one arena of unique
//! programs — structural deduplication over the complete
//! [`CompiledProgram::fingerprint`] (recognizer cells with their
//! `(class, min, max)` action rows, fragment layout, stopping sets, kind) —
//! and a single **global event→action CSR table** is emitted over the whole
//! vocabulary: one event performs one indexed sweep over the *unique* cell
//! groups, and verdicts fan back out to per-property verdict slots through
//! the group→members table.
//!
//! ## Why sharing is sound
//!
//! A recognizer cell's state trajectory depends on more than its own
//! `(class, min, max)` row: fragment handovers, restarts and the
//! episode-level wrappers (`once`/`repeated`, time bounds) all feed back
//! into when a cell is started or wiped. Sharing *mutable* state between
//! two properties is therefore only sound when **every** dynamic input is
//! identical — which is precisely what equal fingerprints guarantee (see
//! [`CompiledProgram::fingerprint`]). Fused groups share at that
//! granularity: one mutable cell arena per unique program, stepped once per
//! event, observationally identical (verdicts, violation diagnostics,
//! `ops`, deadlines) to stepping each member property's own monitor.
//!
//! The engine (`lomon-engine`) runs this as its default backend:
//! `Engine::compile` fuses the rulebook, sessions instantiate one
//! [`CompiledMonitor`] per unique group ([`FusedProgram::instantiate`]),
//! and the dispatch loop sweeps `subscribers(name)` — the global CSR row of
//! the event's name — fanning verdicts out to the member properties.

use std::collections::HashMap;
use std::sync::Arc;

use lomon_trace::Name;

use crate::ast::Property;
use crate::compiled::{CompiledMonitor, CompiledProgram};

/// Stable counting-sort CSR construction over `width` buckets: bucket
/// `b`'s payloads come out as `payloads[start[b] .. start[b + 1]]`, in
/// input order (stability is what makes per-bucket ordering guarantees —
/// ascending member ids, group-major rows — provable from the iteration
/// order of `items` alone). Shared by the fusion's two tables here and
/// the engine's property-granular dispatch index.
pub fn build_csr<T: Copy>(width: usize, items: &[(usize, T)]) -> (Vec<u32>, Vec<T>) {
    let mut start = vec![0u32; width + 1];
    for &(bucket, _) in items {
        start[bucket + 1] += 1;
    }
    for b in 0..width {
        start[b + 1] += start[b];
    }
    let Some(&(_, first)) = items.first() else {
        return (start, Vec::new());
    };
    let mut cursor = start.clone();
    let mut payloads = vec![first; items.len()];
    for &(bucket, payload) in items {
        payloads[cursor[bucket] as usize] = payload;
        cursor[bucket] += 1;
    }
    (start, payloads)
}

/// How much structure the fusion shared, reported by
/// [`FusedProgram::sharing`] and surfaced in the engine's dispatch
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sharing {
    /// Properties in the rulebook.
    pub properties: u64,
    /// Unique programs after structural deduplication.
    pub unique_programs: u64,
    /// Recognizer cells summed over every property's own program.
    pub total_cells: u64,
    /// Recognizer cells actually allocated in the fused arena (one copy per
    /// unique program).
    pub unique_cells: u64,
}

/// The fused form of a whole rulebook: the arena of unique lowered
/// programs, the property↔group maps, and the single global event→action
/// CSR table. Immutable and shared (via [`Arc`]) by any number of engine
/// sessions; the mutable half is one [`CompiledMonitor`] per group
/// ([`FusedProgram::instantiate`]).
#[derive(Debug, Clone)]
pub struct FusedProgram {
    /// Unique programs, in first-appearance order.
    groups: Vec<Arc<CompiledProgram>>,
    /// Property id → its group.
    prop_group: Vec<u32>,
    /// Group `g`'s member property ids (ascending) are
    /// `members[members_start[g] .. members_start[g + 1]]`.
    members_start: Vec<u32>,
    members: Vec<u32>,
    /// Dense group → member count — the dispatch loop's fan-out factor,
    /// precomputed so the hot path loads one word instead of differencing
    /// two CSR bounds.
    member_counts: Vec<u32>,
    /// Global CSR over the vocabulary: the groups subscribed to name `n`
    /// are `sub_groups[sub_start[n] .. sub_start[n + 1]]`, with the
    /// parallel `sub_bases` carrying each group's precomputed action-table
    /// row offset for `n` (consumed by
    /// [`CompiledMonitor::observe_routed`]). Names interned after fusion
    /// fall off the end (no subscribers).
    sub_start: Vec<u32>,
    sub_groups: Vec<u32>,
    sub_bases: Vec<u32>,
    /// Groups encoding timed implications (the only ones with deadlines).
    timed_groups: Vec<u32>,
    /// Dense group → is-timed flags for the dispatch hot path.
    timed_flags: Vec<bool>,
    /// The sharing facts, computed once at fusion time — sessions copy
    /// them into every fresh statistics block (per `reset()`, i.e. per
    /// SMC episode), so the getter must not re-walk the arena.
    sharing: Sharing,
}

impl FusedProgram {
    /// Fuse already-lowered per-property programs into one rulebook
    /// program. `programs[p]` must be the lowered form of property `p`;
    /// property ids in the fused program are positions in this slice.
    pub fn fuse(programs: &[Arc<CompiledProgram>]) -> FusedProgram {
        let mut groups: Vec<Arc<CompiledProgram>> = Vec::new();
        let mut by_key: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut prop_group = Vec::with_capacity(programs.len());
        for program in programs {
            let group = *by_key.entry(program.fingerprint()).or_insert_with(|| {
                groups.push(Arc::clone(program));
                (groups.len() - 1) as u32
            });
            prop_group.push(group);
        }
        Self::assemble(groups, prop_group)
    }

    /// Build the fused tables over an already-deduplicated arena:
    /// `prop_group[p]` names the group serving property `p`. Split out of
    /// [`FusedProgram::fuse`] so [`crate::analysis`] can rebuild a rulebook
    /// around *rewritten* groups (dead-table pruning) while preserving the
    /// original property↔group assignment.
    pub(crate) fn assemble(
        groups: Vec<Arc<CompiledProgram>>,
        prop_group: Vec<u32>,
    ) -> FusedProgram {
        // Group → members CSR; members come out ascending because
        // properties are scanned in id order.
        let member_items: Vec<(usize, u32)> = prop_group
            .iter()
            .enumerate()
            .map(|(p, &g)| (g as usize, p as u32))
            .collect();
        let (members_start, members) = build_csr(groups.len(), &member_items);
        let member_counts: Vec<u32> = members_start.windows(2).map(|w| w[1] - w[0]).collect();

        // Global name → (group, action row) CSR. Rows are group-major in
        // first-appearance order, so dispatch visits groups in the same
        // order their first member property would have been visited by a
        // per-property index.
        let width = groups.iter().map(|g| g.lookup_width()).max().unwrap_or(0);
        let sub_items: Vec<(usize, (u32, u32))> = groups
            .iter()
            .enumerate()
            .flat_map(|(g, program)| {
                // A pruned program's alphabet can name rows the table no
                // longer carries (see `CompiledProgram::pruned`) — those
                // names simply get no CSR entry.
                program.alphabet().iter().filter_map(move |name| {
                    let base = program.action_row(name)?;
                    Some((name.index(), (g as u32, base)))
                })
            })
            .collect();
        let (sub_start, sub_pairs) = build_csr(width, &sub_items);
        let (sub_groups, sub_bases) = sub_pairs.into_iter().unzip();
        let timed_flags: Vec<bool> = groups.iter().map(|g| g.is_timed()).collect();
        let timed_groups = timed_flags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(g, _)| g as u32)
            .collect();

        let unique_cells: u64 = groups.iter().map(|g| g.cell_count() as u64).sum();
        let total_cells: u64 = prop_group
            .iter()
            .map(|&g| groups[g as usize].cell_count() as u64)
            .sum();
        let sharing = Sharing {
            properties: prop_group.len() as u64,
            unique_programs: groups.len() as u64,
            total_cells,
            unique_cells,
        };

        FusedProgram {
            groups,
            prop_group,
            members_start,
            members,
            member_counts,
            sub_start,
            sub_groups,
            sub_bases,
            timed_groups,
            timed_flags,
            sharing,
        }
    }

    /// Lower and fuse a rulebook of **well-formed** properties (the
    /// single-call counterpart of `CompiledProgram::lower` per property
    /// plus [`FusedProgram::fuse`]). Callers with unvalidated input should
    /// validate first — see `lomon-engine`'s `Engine::compile`, which
    /// reports every failing property before fusing the survivors.
    pub fn lower(properties: &[Property]) -> FusedProgram {
        let programs: Vec<Arc<CompiledProgram>> = properties
            .iter()
            .map(|p| Arc::new(CompiledProgram::lower(p)))
            .collect();
        Self::fuse(&programs)
    }

    /// Number of properties in the fused rulebook.
    pub fn property_count(&self) -> usize {
        self.prop_group.len()
    }

    /// Number of unique groups after deduplication.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The unique program of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group(&self, g: usize) -> &Arc<CompiledProgram> {
        &self.groups[g]
    }

    /// The group serving property `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn group_of(&self, p: usize) -> usize {
        self.prop_group[p] as usize
    }

    /// Number of member properties of group `g` — the dispatch fan-out
    /// factor, served from a dense precomputed array (one load on the hot
    /// path instead of two CSR-bound loads and a subtract).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[inline]
    pub fn member_count(&self, g: usize) -> u32 {
        self.member_counts[g]
    }

    /// The member property ids of group `g`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[inline]
    pub fn members(&self, g: usize) -> &[u32] {
        let (s, e) = (
            self.members_start[g] as usize,
            self.members_start[g + 1] as usize,
        );
        &self.members[s..e]
    }

    /// The global CSR row of `name`: subscribed group ids with, in
    /// parallel, each group's precomputed action-table row offset for the
    /// name. Empty for names outside every alphabet (including names
    /// interned after fusion).
    #[inline]
    pub fn subscribers(&self, name: Name) -> (&[u32], &[u32]) {
        match self.sub_start.get(name.index()..name.index() + 2) {
            Some(bounds) => {
                let (s, e) = (bounds[0] as usize, bounds[1] as usize);
                (&self.sub_groups[s..e], &self.sub_bases[s..e])
            }
            None => (&[], &[]),
        }
    }

    /// Ids of timed-implication groups (the only ones with deadlines).
    pub fn timed_groups(&self) -> &[u32] {
        &self.timed_groups
    }

    /// Dense group → is-timed flags.
    pub fn timed_flags(&self) -> &[bool] {
        &self.timed_flags
    }

    /// Rebuild the rulebook around a rewritten program arena (same length
    /// and order as the current groups), preserving the property↔group
    /// assignment. This is how `--fix-prune` feeds dead-table-pruned
    /// programs back into the fused representation: the CSR tables are
    /// re-derived from the new programs' (possibly smaller) action tables.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not have exactly one program per existing
    /// group.
    pub fn with_groups(&self, groups: Vec<Arc<CompiledProgram>>) -> FusedProgram {
        assert_eq!(groups.len(), self.groups.len(), "one program per group");
        Self::assemble(groups, self.prop_group.clone())
    }

    /// Allocate the mutable half: one monitor per unique group, each
    /// sharing its group's program tables. This is the whole per-session
    /// state of the fused backend; reusing a session only rewinds these.
    pub fn instantiate(&self) -> Vec<CompiledMonitor> {
        self.groups
            .iter()
            .map(|program| CompiledMonitor::new(Arc::clone(program)))
            .collect()
    }

    /// How much the fusion shared — static facts of the rulebook,
    /// precomputed at fusion time (this is called once per session
    /// `reset()`, i.e. per SMC episode).
    #[inline]
    pub fn sharing(&self) -> Sharing {
        self.sharing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_property;
    use crate::verdict::{Monitor, Verdict};
    use lomon_trace::{SimTime, TimedEvent, Vocabulary};

    fn lower_texts(texts: &[&str]) -> (Vocabulary, FusedProgram) {
        let mut voc = Vocabulary::new();
        let properties: Vec<Property> = texts
            .iter()
            .map(|t| parse_property(t, &mut voc).expect("parses"))
            .collect();
        (voc, FusedProgram::lower(&properties))
    }

    #[test]
    fn identical_properties_share_one_group() {
        let (_, fused) = lower_texts(&[
            "all{a, b} << start once",
            "go => out:done within 50 ns",
            "all{a, b} << start once",
            "all{a, b} << start once",
        ]);
        assert_eq!(fused.property_count(), 4);
        assert_eq!(fused.group_count(), 2);
        assert_eq!(fused.group_of(0), 0);
        assert_eq!(fused.group_of(1), 1);
        assert_eq!(fused.group_of(2), 0);
        assert_eq!(fused.members(0), &[0, 2, 3]);
        assert_eq!(fused.members(1), &[1]);
        let sharing = fused.sharing();
        assert_eq!(sharing.properties, 4);
        assert_eq!(sharing.unique_programs, 2);
        // 3 × (a, b) + 1 × (go, done) cells totalled vs interned.
        assert_eq!(sharing.total_cells, 3 * 2 + 2);
        assert_eq!(sharing.unique_cells, 2 + 2);
    }

    #[test]
    fn structural_differences_stay_separate() {
        // Same alphabet, but different cell order, connective, repetition
        // and kind — none of these may share state: cell order changes the
        // violation detail's range index, `any`/`all` changes the `nok`
        // path, `once`/`repeated` changes the episode dynamics.
        let (_, fused) = lower_texts(&[
            "all{a, b} << start once",
            "all{b, a} << start once",
            "any{a, b} << start once",
            "all{a, b} << start repeated",
        ]);
        assert_eq!(fused.group_count(), 4);

        // Different time bounds never share either.
        let (_, fused) = lower_texts(&[
            "go => out:done within 50 ns",
            "go => out:done within 60 ns",
            "go => out:done within 50 ns",
        ]);
        assert_eq!(fused.group_count(), 2);
        assert_eq!(fused.members(0), &[0, 2]);
    }

    #[test]
    fn csr_routes_names_to_groups_with_valid_bases() {
        let (voc, fused) = lower_texts(&[
            "all{a, b} << start once",
            "b << go once",
            "all{a, b} << start once",
        ]);
        let a = voc.lookup("a").unwrap();
        let b = voc.lookup("b").unwrap();
        let (groups, bases) = fused.subscribers(a);
        assert_eq!(groups, &[0]);
        assert_eq!(bases[0], fused.group(0).action_row(a).unwrap());
        let (groups, bases) = fused.subscribers(b);
        assert_eq!(groups, &[0, 1]);
        for (&g, &base) in groups.iter().zip(bases) {
            assert_eq!(base, fused.group(g as usize).action_row(b).unwrap());
        }
        // A name the rulebook never mentions routes nowhere, even past the
        // CSR's width.
        assert_eq!(fused.subscribers(Name::from_index(1000)).0.len(), 0);
    }

    #[test]
    fn timed_groups_are_tracked() {
        let (_, fused) = lower_texts(&[
            "all{a, b} << start once",
            "go => out:done within 50 ns",
            "go => out:done within 50 ns",
        ]);
        assert_eq!(fused.timed_groups(), &[1]);
        assert_eq!(fused.timed_flags(), &[false, true]);
    }

    #[test]
    fn shared_group_monitor_matches_an_independent_monitor() {
        // One group serves three identical properties; stepping it once per
        // event must equal stepping a standalone compiled monitor of the
        // same property.
        let (voc, fused) = lower_texts(&[
            "all{a, b} << start repeated",
            "all{a, b} << start repeated",
            "all{a, b} << start repeated",
        ]);
        assert_eq!(fused.group_count(), 1);
        let mut states = fused.instantiate();
        assert_eq!(states.len(), 1);
        let mut solo = CompiledMonitor::new(Arc::clone(fused.group(0)));
        for (name, ns) in [("b", 10), ("a", 20), ("start", 30), ("start", 40)] {
            let event = TimedEvent::new(voc.lookup(name).unwrap(), SimTime::from_ns(ns));
            let base = fused.group(0).action_row(event.name).unwrap();
            let vf = states[0].observe_routed(event, base);
            let vs = solo.observe(event);
            assert_eq!(vf, vs);
            assert_eq!(states[0].ops(), solo.ops());
        }
        assert_eq!(states[0].verdict(), Verdict::Violated);
        assert_eq!(
            states[0].violation().map(|v| &v.detail),
            solo.violation().map(|v| &v.detail)
        );
    }

    #[test]
    fn empty_rulebook_fuses_to_nothing() {
        let fused = FusedProgram::lower(&[]);
        assert_eq!(fused.property_count(), 0);
        assert_eq!(fused.group_count(), 0);
        assert_eq!(fused.subscribers(Name::from_index(0)).0.len(), 0);
        assert!(fused.instantiate().is_empty());
    }
}
