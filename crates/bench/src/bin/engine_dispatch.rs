//! Engine scaling: event-indexed dispatch vs naive broadcast as the
//! property count grows — the Fig. 6-style story for the streaming
//! subsystem. With N properties over disjoint alphabets, broadcast steps
//! every live monitor on every event (N steps/event) while the inverted
//! index steps exactly the one subscriber (1 step/event); retirement of
//! one-shot properties shrinks even that.
//!
//! Run with `cargo run -p lomon-bench --bin engine_dispatch --release`.
//! `--check` runs a reduced matrix and exits non-zero unless indexed
//! dispatch performs strictly fewer monitor steps than broadcast on the
//! 50-property workload (the acceptance gate wired into CI).

use std::process::ExitCode;
use std::time::Instant;

use lomon_engine::{DispatchMode, Engine, EngineReport};
use lomon_trace::{SimTime, TimedEvent, Vocabulary};

/// A rulebook of `count` antecedent properties over pairwise-disjoint
/// alphabets: `all{p<k>_a, p<k>_b, p<k>_c} << p<k>_start <flag>`.
fn rulebook(count: usize, repeated: bool) -> Vec<String> {
    let flag = if repeated { "repeated" } else { "once" };
    (0..count)
        .map(|k| format!("all{{p{k}_a, p{k}_b, p{k}_c}} << p{k}_start {flag}"))
        .collect()
}

/// `rounds` satisfying episodes for every property, round-robin interleaved
/// (each event belongs to exactly one property's alphabet).
fn workload(count: usize, rounds: usize, voc: &mut Vocabulary) -> Vec<TimedEvent> {
    let mut events = Vec::with_capacity(count * rounds * 4);
    let mut ns = 0u64;
    for _ in 0..rounds {
        for k in 0..count {
            for suffix in ["a", "b", "c", "start"] {
                ns += 10;
                let name = voc.input(&format!("p{k}_{suffix}"));
                events.push(TimedEvent::new(name, SimTime::from_ns(ns)));
            }
        }
    }
    events
}

struct Measurement {
    report: EngineReport,
    micros: u128,
}

fn run(engine: &Engine, mode: DispatchMode, events: &[TimedEvent]) -> Measurement {
    let mut session = engine.session_with(mode);
    let started = Instant::now();
    session.ingest_batch(events);
    let end = events.last().map(|e| e.time).unwrap_or(SimTime::ZERO);
    let report = session.finish(end);
    Measurement {
        report,
        micros: started.elapsed().as_micros(),
    }
}

fn main() -> ExitCode {
    let check_mode = std::env::args().any(|a| a == "--check");
    let (counts, rounds): (&[usize], usize) = if check_mode {
        (&[50], 20)
    } else {
        (&[1, 2, 5, 10, 20, 50, 100], 200)
    };

    println!("engine dispatch — indexed vs broadcast, disjoint alphabets, {rounds} rounds");
    println!(
        "{:>5} {:>5} {:>9} {:>13} {:>15} {:>8} {:>11} {:>13}",
        "props",
        "kind",
        "events",
        "indexed steps",
        "broadcast steps",
        "ratio",
        "indexed us",
        "broadcast us"
    );

    let mut ok = true;
    for &count in counts {
        // `repeated` keeps every monitor live (pure index win); `once`
        // retires each monitor after its first episode (retirement win on
        // top).
        for repeated in [true, false] {
            let mut voc = Vocabulary::new();
            let engine = Engine::compile(&rulebook(count, repeated), &mut voc)
                .expect("bench rulebook compiles");
            let events = workload(count, rounds, &mut voc);

            let indexed = run(&engine, DispatchMode::Indexed, &events);
            let broadcast = run(&engine, DispatchMode::Broadcast, &events);

            // Differential check: both modes must agree on every verdict.
            for (i, b) in indexed
                .report
                .properties
                .iter()
                .zip(&broadcast.report.properties)
            {
                assert_eq!(i.verdict, b.verdict, "modes disagree on {}", i.property);
            }
            let (isteps, bsteps) = (
                indexed.report.stats.monitor_steps,
                broadcast.report.stats.monitor_steps,
            );
            if count > 1 && isteps >= bsteps {
                ok = false;
            }
            println!(
                "{:>5} {:>5} {:>9} {:>13} {:>15} {:>8.1} {:>11} {:>13}",
                count,
                if repeated { "rep" } else { "once" },
                indexed.report.stats.events,
                isteps,
                bsteps,
                bsteps as f64 / isteps.max(1) as f64,
                indexed.micros,
                broadcast.micros,
            );
        }
    }

    println!();
    if check_mode {
        if ok {
            println!("OK: indexed dispatch performed strictly fewer monitor steps than broadcast");
            ExitCode::SUCCESS
        } else {
            println!("FAIL: indexed dispatch did not beat broadcast");
            ExitCode::FAILURE
        }
    } else {
        println!("Expected shape: indexed steps stay ~1/event regardless of the");
        println!("property count (ratio ~N on the `rep` rows, higher on `once`");
        println!("rows once monitors retire); broadcast grows linearly with N.");
        ExitCode::SUCCESS
    }
}
