//! Processes: the kernel's unit of concurrent behaviour.

use crate::sched::Kernel;

/// Identifier of a registered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Dense index (registration order).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild from an index (no validation).
    pub fn from_index(index: usize) -> Self {
        ProcessId(index)
    }
}

/// A simulation process in the SystemC `SC_METHOD` style: the kernel calls
/// [`Process::resume`] whenever a timer, event or delta notification the
/// process registered for fires; the process performs some work, possibly
/// schedules itself or notifies others, and returns. State machines replace
/// suspended stacks — the idiomatic shape for deterministic Rust
/// simulations.
pub trait Process: std::any::Any {
    /// A short name for logs and diagnostics.
    fn name(&self) -> &str;

    /// Called by the kernel when one of the process's triggers fires.
    /// `pid` is the process's own id (for re-scheduling).
    fn resume(&mut self, pid: ProcessId, kernel: &mut Kernel);
}

impl dyn Process {
    /// Read a concrete process's state back (tests, post-run inspection).
    pub fn downcast_ref<T: Process>(&self) -> Option<&T> {
        (self as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable downcast.
    pub fn downcast_mut<T: Process>(&mut self) -> Option<&mut T> {
        (self as &mut dyn std::any::Any).downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let pid = ProcessId::from_index(3);
        assert_eq!(pid.index(), 3);
        assert_eq!(pid, ProcessId::from_index(3));
    }

    #[test]
    fn downcasting_processes() {
        struct P(u32);
        impl Process for P {
            fn name(&self) -> &str {
                "p"
            }
            fn resume(&mut self, _pid: ProcessId, _k: &mut Kernel) {}
        }
        let p: Box<dyn Process> = Box::new(P(5));
        assert_eq!(p.downcast_ref::<P>().map(|p| p.0), Some(5));
    }
}
