//! Golden tests for the explainability surface: `lomon check --explain`
//! witness renderings (text and NDJSON) over the committed
//! `tests/fixtures/explain/` fixture, and the `lomon profile` report in
//! both formats, including its exit-code contract (0 when the profile
//! ran — violations are reported, not failed on; 1 on unreadable input;
//! 2 on usage errors).

mod common;

use common::{lomon, stderr, stdout};

const RULES: &str = "tests/fixtures/explain/violation.rules";
const TRACE: &str = "tests/fixtures/explain/violation.trace";

/// The fixture's two distinct properties, as `check` takes them inline.
const ORDERING: &str = "all{a, b} << start once";
const TIMED: &str = "start => out:irq within 20 ns";

/// Mask every nanosecond measurement (`NNNN ns` and `"ns": NNNN`) so
/// wall-clock noise cannot break the golden comparison.
fn mask_ns(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() {
            let mut digits = String::from(c);
            while chars.peek().is_some_and(char::is_ascii_digit) {
                digits.push(chars.next().expect("peeked"));
            }
            let rest: String = chars.clone().take(3).collect();
            if rest == " ns" {
                out.push('#');
            } else {
                out.push_str(&digits);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Strip `"ns": <digits>` JSON fields down to `"ns": #`.
fn mask_json_ns(text: &str) -> String {
    let mut out = String::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"ns\": ") {
        let (head, tail) = rest.split_at(at + "\"ns\": ".len());
        out.push_str(head);
        out.push('#');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn check_explain_text_golden() {
    let output = lomon(&["check", "--explain", TRACE, ORDERING, TIMED]);
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    let golden = "\
tests/fixtures/explain/violation.trace: 3 events, end at 90ns
  [violated] all{a, b} << start once
      `start` at 40ns: a required range never occurred — antecedent episode 1: fragment 1/1, range 2 rejected; expected one of {b}
      because (2 contributing steps):
        `a` at 10ns -- cell 0: s1 -> s3
        `start` at 40ns -- cell 0: s3 -> s0
  [violated] start => out:irq within 20 ns
      `irq` at 90ns: response finished after the deadline — episode 1: Q unfinished at 90ns, deadline was 60ns (P ended 40ns, budget 20ns); expected one of {irq}; open obligation `irq`[1,1]
      because (2 contributing steps):
        `start` at 40ns -- cell 0: s1 -> s3
        `irq` at 90ns -- cell 0: s3 -> s3
  dispatch: 3 events x 2 properties: 4 monitor steps (1 skipped live, 6 naive)
";
    assert_eq!(stdout(&output), golden);
}

#[test]
fn check_explain_json_golden() {
    let output = lomon(&[
        "check",
        "--explain",
        "--format",
        "json",
        TRACE,
        ORDERING,
        TIMED,
    ]);
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    let golden = concat!(
        r#"{"file": "tests/fixtures/explain/violation.trace", "properties": ["#,
        r#"{"index": 0, "property": "all{a, b} << start once", "verdict": "violated", "#,
        r#""diagnostic": "`start` at 40ns: a required range never occurred — antecedent episode 1: fragment 1/1, range 2 rejected; expected one of {b}", "#,
        r#""witness": [{"time_ps": 10000, "event": "a", "cell": 0, "from": "s1", "to": "s3"}, "#,
        r#"{"time_ps": 40000, "event": "start", "cell": 0, "from": "s3", "to": "s0"}]}, "#,
        r#"{"index": 1, "property": "start => out:irq within 20 ns", "verdict": "violated", "#,
        r#""diagnostic": "`irq` at 90ns: response finished after the deadline — episode 1: Q unfinished at 90ns, deadline was 60ns (P ended 40ns, budget 20ns); expected one of {irq}; open obligation `irq`[1,1]", "#,
        r#""witness": [{"time_ps": 40000, "event": "start", "cell": 0, "from": "s1", "to": "s3"}, "#,
        r#"{"time_ps": 90000, "event": "irq", "cell": 0, "from": "s3", "to": "s3"}]}], "#,
        r#""ok": false, "stats": {"backend": "fused", "properties": 2, "events": 3, "monitor_steps": 4, "#,
        r#""steps_skipped": 1, "retired": 2, "total_cells": 4, "unique_cells": 4, "shared_hits": 0, "violations": 2}}"#,
        "\n",
    );
    assert_eq!(stdout(&output), golden);
}

#[test]
fn check_without_explain_stays_witness_free() {
    let output = lomon(&["check", TRACE, ORDERING, TIMED]);
    assert_eq!(output.status.code(), Some(1));
    let text = stdout(&output);
    assert!(!text.contains("because"), "stdout: {text}");
    let json = lomon(&["check", "--format", "json", TRACE, ORDERING, TIMED]);
    assert!(
        !stdout(&json).contains("witness"),
        "stdout: {}",
        stdout(&json)
    );
}

#[test]
fn profile_text_golden_and_exit_zero_despite_violations() {
    let output = lomon(&["profile", RULES, TRACE]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr(&output));
    let golden = "\
profiled 3 events over 2 groups (3 properties, 3 violations)
  group 0: 2 steps, # ns, 2 member(s)
    - all{a, b} << start once
    - all{a, b} << start once
  group 1: 2 steps, # ns, 1 member(s)
    - start => out:irq within # ns
";
    assert_eq!(mask_ns(&stdout(&output)), golden);
    // The fixture's duplicate property is reported by the rulebook lint.
    assert!(
        stderr(&output).contains("warning[L003]"),
        "stderr: {}",
        stderr(&output)
    );
}

#[test]
fn profile_json_golden_and_chrome_trace() {
    let dir = std::env::temp_dir().join("lomon_cli_explain_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_out = dir.join("profile_trace.json");
    let trace_out_str = trace_out.to_str().expect("utf-8 temp path");
    let output = lomon(&[
        "profile",
        "--format",
        "json",
        "--top",
        "1",
        "--trace-out",
        trace_out_str,
        RULES,
        TRACE,
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr(&output));
    let golden = concat!(
        r#"{"events": 3, "group_count": 2, "violations": 3, "groups": ["#,
        r#"{"group": 0, "steps": 2, "ns": #, "members": ["all{a, b} << start once", "all{a, b} << start once"]}]}"#,
        "\n",
    );
    assert_eq!(mask_json_ns(&stdout(&output)), golden);

    // The Chrome trace file holds the four pipeline phases as complete
    // ("ph": "X") events — loadable in chrome://tracing or Perfetto.
    let trace_json = std::fs::read_to_string(&trace_out).expect("trace file written");
    assert!(
        trace_json.starts_with(r#"{"traceEvents": ["#),
        "{trace_json}"
    );
    for phase in ["load-trace", "compile", "replay", "report"] {
        assert!(
            trace_json.contains(&format!(r#""name": "{phase}""#)),
            "{trace_json}"
        );
    }
    assert!(trace_json.contains(r#""ph": "X""#), "{trace_json}");
    std::fs::remove_file(&trace_out).ok();
}

#[test]
fn profile_exit_code_contract() {
    // 1: unreadable input (missing trace file).
    let missing = lomon(&["profile", RULES, "tests/fixtures/explain/absent.trace"]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(
        stderr(&missing).contains("cannot read"),
        "{}",
        stderr(&missing)
    );
    // 1: a rulebook that does not compile.
    let broken = lomon(&["profile", "not a property <<", TRACE]);
    assert_eq!(broken.status.code(), Some(1), "stderr: {}", stderr(&broken));
    // 2: usage error (no arguments).
    let usage = lomon(&["profile"]);
    assert_eq!(usage.status.code(), Some(2));
    // 2: unknown flag.
    let flag = lomon(&["profile", "--bogus", RULES, TRACE]);
    assert_eq!(flag.status.code(), Some(2), "stderr: {}", stderr(&flag));
}

#[test]
fn watch_explain_streams_witnesses() {
    let stream = "10ns in a\n40ns in start\n";
    let output = common::lomon_with_stdin(&["watch", "--explain", ORDERING], stream);
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(
        text.contains("because (2 contributing steps):"),
        "stdout: {text}"
    );
    assert!(
        text.contains("`a` at 10ns -- cell 0: s1 -> s3"),
        "stdout: {text}"
    );
}
