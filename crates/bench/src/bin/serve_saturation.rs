//! Saturation throughput of the `lomon serve` daemon: many concurrent
//! NDJSON clients over loopback TCP against one in-process [`Server`].
//!
//! Each client opens its own connection, runs `STREAMS_PER_CLIENT` streams
//! back to back on the recycled session (events, `end`, read verdicts +
//! summary), and checks every summary byte it gets back. The score is the
//! aggregate event rate across all clients wall-clock — the number that
//! degrades if per-stream isolation, the session pool, or the shedding
//! path grows a lock convoy.
//!
//! Run `cargo run -p lomon-bench --bin serve_saturation --release` to
//! print the table and (re)write `BENCH_serve.json` in the current
//! directory (the repo tracks it at the root). `--check` is the CI gate:
//! at least [`CHECK_CLIENTS`] concurrent streams must all finish with
//! correct summaries, zero handler panics, and an aggregate rate of at
//! least [`GATE_EVENTS_PER_SEC`] events/second.
//!
//! `--clients N`, `--streams N` and `--events N` override the matrix;
//! `--out PATH` redirects the JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use lomon_serve::{ServeConfig, Server};

/// The `--check` gate: this many clients stream concurrently.
const CHECK_CLIENTS: usize = 100;
/// Aggregate floor for `--check`, in events per second across all
/// clients. Loopback measurements on the saturated matrix sit well above
/// 10x this; the floor only catches order-of-magnitude collapses
/// (accidental serialization, a poisoned pool, a busy-wait in the reaper).
const GATE_EVENTS_PER_SEC: f64 = 50_000.0;

/// The serving rulebook: one loose-ordering antecedent plus one timed
/// deadline, so every event exercises both recognizer kinds.
const RULEBOOK: &str =
    "all{set_imgAddr, set_glAddr, set_glSize} << start repeated\ngo => out:done within 50 ns\n";

struct ClientOutcome {
    events: u64,
    streams: u64,
    /// First divergence from the expected frame sequence, if any.
    error: Option<String>,
}

/// One client: `streams` clean streams of `events_per_stream` events over
/// a single connection, verifying the ready frame, absence of verdict
/// pushes (the stream is healthy) and every summary.
fn run_client(addr: std::net::SocketAddr, streams: u64, events_per_stream: u64) -> ClientOutcome {
    let fail = |events, streams, message: String| ClientOutcome {
        events,
        streams,
        error: Some(message),
    };
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return fail(0, 0, format!("connect: {e}")),
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || !line.contains("\"type\": \"ready\"") {
        return fail(0, 0, format!("expected ready frame, got: {line:?}"));
    }

    let mut sent = 0u64;
    for stream_no in 0..streams {
        // A healthy configure-then-start cycle, repeated: no verdict ever
        // finalizes mid-stream, so the only pushback is the end-of-stream
        // report — the hot path stays ingest-only.
        let mut batch = String::new();
        let mut now = 10u64;
        for _ in 0..events_per_stream / 4 {
            for name in ["set_imgAddr", "set_glAddr", "set_glSize", "start"] {
                batch.push_str(&format!(
                    "{{\"time\": \"{now}ns\", \"name\": \"{name}\"}}\n"
                ));
                now += 10;
                sent += 1;
            }
        }
        batch.push_str(&format!("{{\"end\": \"{now}ns\"}}\n"));
        if let Err(e) = writer.write_all(batch.as_bytes()) {
            return fail(sent, stream_no, format!("write stream {stream_no}: {e}"));
        }
        // Read to this stream's summary; `"final": false` verdict lines
        // precede it.
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return fail(sent, stream_no, "eof before summary".to_owned()),
                Ok(_) => {}
                Err(e) => return fail(sent, stream_no, format!("read: {e}")),
            }
            if line.contains("\"type\": \"summary\"") {
                if !line.contains("\"ok\": true") {
                    return fail(sent, stream_no, format!("summary not ok: {line}"));
                }
                break;
            }
            if line.contains("\"type\": \"error\"") || line.contains("\"type\": \"overload\"") {
                return fail(sent, stream_no, format!("unexpected frame: {line}"));
            }
        }
    }
    ClientOutcome {
        events: sent,
        streams,
        error: None,
    }
}

struct Row {
    clients: usize,
    streams_per_client: u64,
    events_per_stream: u64,
    total_events: u64,
    elapsed: Duration,
    failures: Vec<String>,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.total_events as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Start a fresh server, saturate it with `clients` concurrent
/// connections, and tear it down checking the counters.
fn run_matrix_point(
    clients: usize,
    streams_per_client: u64,
    events_per_stream: u64,
) -> Result<Row, String> {
    let config = ServeConfig {
        max_streams: clients + 8,
        idle_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let mut server = Server::start(config, RULEBOOK).map_err(|e| format!("server start: {e:?}"))?;
    let addr = server.local_addr();

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(move || run_client(addr, streams_per_client, events_per_stream)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut failures: Vec<String> = outcomes.iter().filter_map(|o| o.error.clone()).collect();
    let total_events: u64 = outcomes.iter().map(|o| o.events).sum();
    let total_streams: u64 = outcomes.iter().map(|o| o.streams).sum();

    let metrics = server.metrics();
    if metrics.panics.get() != 0 {
        failures.push(format!("{} handler panic(s)", metrics.panics.get()));
    }
    if metrics.streams.get() != total_streams {
        failures.push(format!(
            "server finalized {} streams, clients completed {total_streams}",
            metrics.streams.get()
        ));
    }
    if metrics.events.get() != total_events {
        failures.push(format!(
            "server ingested {} events, clients sent {total_events}",
            metrics.events.get()
        ));
    }
    server.shutdown();

    Ok(Row {
        clients,
        streams_per_client,
        events_per_stream,
        total_events,
        elapsed,
        failures,
    })
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"serve_saturation\",\n  \"unit\": \"events/sec aggregate\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (k, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"streams_per_client\": {}, \"events_per_stream\": {}, \
             \"total_events\": {}, \"elapsed_ms\": {}, \"events_per_sec\": {:.0}}}{}\n",
            row.clients,
            row.streams_per_client,
            row.events_per_stream,
            row.total_events,
            row.elapsed.as_millis(),
            row.events_per_sec(),
            if k + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|at| args.get(at + 1).cloned());

    // The check point keeps CI fast; the full matrix sweeps the client
    // count so the JSON shows where contention sets in.
    let matrix: Vec<(usize, u64, u64)> = if check_mode {
        let clients = flag_value(&args, "--clients").map_or(CHECK_CLIENTS, |v| v as usize);
        let streams = flag_value(&args, "--streams").unwrap_or(2);
        let events = flag_value(&args, "--events").unwrap_or(200);
        vec![(clients, streams, events)]
    } else {
        let streams = flag_value(&args, "--streams").unwrap_or(4);
        let events = flag_value(&args, "--events").unwrap_or(400);
        [8usize, 32, 128]
            .iter()
            .map(|&clients| (clients, streams, events))
            .collect()
    };

    println!("serve saturation — concurrent NDJSON clients over loopback TCP");
    println!(
        "{:>8} {:>8} {:>8} {:>12} {:>10} {:>14}",
        "clients", "streams", "ev/strm", "events", "ms", "agg ev/s"
    );

    let mut rows = Vec::new();
    let mut ok = true;
    for (clients, streams, events) in matrix {
        match run_matrix_point(clients, streams, events) {
            Ok(row) => {
                println!(
                    "{:>8} {:>8} {:>8} {:>12} {:>10} {:>14.0}",
                    row.clients,
                    row.streams_per_client,
                    row.events_per_stream,
                    row.total_events,
                    row.elapsed.as_millis(),
                    row.events_per_sec(),
                );
                for failure in &row.failures {
                    println!("FAIL: {clients} clients: {failure}");
                    ok = false;
                }
                rows.push(row);
            }
            Err(e) => {
                println!("FAIL: {clients} clients: {e}");
                ok = false;
            }
        }
    }
    println!();

    if check_mode {
        for row in &rows {
            if row.events_per_sec() < GATE_EVENTS_PER_SEC {
                println!(
                    "FAIL: {} clients: {:.0} events/sec below the {GATE_EVENTS_PER_SEC:.0} gate",
                    row.clients,
                    row.events_per_sec()
                );
                ok = false;
            }
        }
        if ok {
            println!(
                "OK: {CHECK_CLIENTS}+ concurrent streams finalized correctly at >= \
                 {GATE_EVENTS_PER_SEC:.0} events/sec aggregate, zero handler panics"
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        let path = out_path.unwrap_or_else(|| "BENCH_serve.json".to_owned());
        match std::fs::write(&path, render_json(&rows)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
