//! Reports: per-property verdicts with diagnostics, plus the dispatch
//! statistics that make the index's win measurable.

use lomon_core::verdict::{Verdict, Violation};
use lomon_core::witness::Witness;
use lomon_trace::{json_escape, Vocabulary};

use std::fmt::Write as _;
use std::sync::Arc;

/// Dispatch accounting for one session. The headline number is
/// [`DispatchStats::steps_skipped`]: monitor steps a naive broadcast would
/// have performed that the inverted index (plus retirement) avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Properties in the compiled set.
    pub properties: u64,
    /// Events ingested.
    pub events: u64,
    /// Monitor steps actually performed (`observe` calls plus deadline
    /// `advance_time` sweeps; `finish` is not counted).
    pub monitor_steps: u64,
    /// Steps a live monitor was *not* given an event because the index
    /// proved it could not react. Always zero in broadcast mode.
    pub steps_skipped: u64,
    /// Monitors retired (verdict went final) by the end of the report.
    pub retired: u64,
    /// Recognizer cells summed over every property's own lowered program —
    /// what a purely per-property backend allocates and steps. A static
    /// fact of the compiled rulebook, identical across backends.
    pub total_cells: u64,
    /// Recognizer cells actually allocated after the rulebook fusion
    /// interned structurally identical programs (one copy per unique
    /// group). `total_cells - unique_cells` is the arena the fusion saved.
    pub unique_cells: u64,
    /// Properties served by a monitor step *beyond the first*: every time
    /// a shared fused group advanced, each extra member property it spoke
    /// for counts one shared hit. Zero on the per-property backends.
    pub shared_hits: u64,
}

impl DispatchStats {
    /// Steps an index-less broadcast over never-retired monitors would have
    /// performed: one per property per event.
    pub fn broadcast_steps(&self) -> u64 {
        self.properties * self.events
    }

    /// The canonical machine-readable stats object — **the** schema every
    /// CLI surface shares (`check --format json`'s `"stats"`, `watch`'s
    /// NDJSON summary, `smc`'s JSON report, `--stats-every` heartbeats),
    /// derived from the obs snapshot. Fields:
    ///
    /// `backend`, `properties`, `events`, `monitor_steps`,
    /// `steps_skipped`, `retired`, `total_cells`, `unique_cells`,
    /// `shared_hits`, `violations`.
    pub fn render_json_object(&self, backend: &str, violations: u64) -> String {
        format!(
            "{{\"backend\": \"{}\", \"properties\": {}, \"events\": {}, \
             \"monitor_steps\": {}, \"steps_skipped\": {}, \"retired\": {}, \
             \"total_cells\": {}, \"unique_cells\": {}, \"shared_hits\": {}, \
             \"violations\": {}}}",
            backend,
            self.properties,
            self.events,
            self.monitor_steps,
            self.steps_skipped,
            self.retired,
            self.total_cells,
            self.unique_cells,
            self.shared_hits,
            violations,
        )
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{} events x {} properties: {} monitor steps ({} skipped live, {} naive)",
            self.events,
            self.properties,
            self.monitor_steps,
            self.steps_skipped,
            self.broadcast_steps(),
        );
        if self.unique_cells < self.total_cells {
            let _ = write!(
                line,
                "; fused {} cells into {} ({} shared hits)",
                self.total_cells, self.unique_cells, self.shared_hits,
            );
        }
        line
    }
}

/// The outcome for one property of the set.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// Position in the compiled set.
    pub index: usize,
    /// The property's source text (or rendered AST), shared with the engine
    /// — reports clone a pointer, never the text itself.
    pub property: Arc<str>,
    /// The verdict at report time.
    pub verdict: Verdict,
    /// Diagnostics, when the verdict is [`Verdict::Violated`].
    pub violation: Option<Violation>,
    /// The recorded witness chain behind the violation — present only when
    /// the session was in explain mode
    /// ([`Session::enable_explain`](crate::Session::enable_explain)) *and*
    /// the verdict is [`Verdict::Violated`]. Detached sessions always
    /// report `None`, keeping their renderings byte-identical to a session
    /// without explain support.
    pub witness: Option<Witness>,
}

/// Everything a session knows at (or before) end of observation.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-property outcomes, in compilation order.
    pub properties: Vec<PropertyReport>,
    /// Dispatch accounting.
    pub stats: DispatchStats,
    /// Stable label of the backend that produced the report
    /// ([`crate::Backend::label`]).
    pub backend: &'static str,
}

impl EngineReport {
    /// Whether no property is violated.
    pub fn is_ok(&self) -> bool {
        self.properties.iter().all(|p| p.verdict.is_ok())
    }

    /// The violated properties, in compilation order.
    pub fn violations(&self) -> impl Iterator<Item = &PropertyReport> {
        self.properties
            .iter()
            .filter(|p| p.verdict == Verdict::Violated)
    }

    /// Multi-line human rendering: one `[verdict] property` line each, with
    /// an indented diagnostic under every violation, then the stats line.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        for p in &self.properties {
            let _ = writeln!(out, "  [{}] {}", p.verdict, p.property);
            if let Some(violation) = &p.violation {
                let _ = writeln!(out, "      {}", violation.display(voc));
            }
            if let Some(witness) = &p.witness {
                if !witness.steps.is_empty() || witness.dropped > 0 {
                    let _ = writeln!(
                        out,
                        "      because ({} contributing steps):",
                        witness.steps.len()
                    );
                    if witness.dropped > 0 {
                        let _ = writeln!(
                            out,
                            "        ... {} earlier steps dropped by the flight recorder",
                            witness.dropped
                        );
                    }
                    for s in &witness.steps {
                        let (from, to) = s.transition();
                        let _ = writeln!(
                            out,
                            "        `{}` at {} -- cell {}: {} -> {}",
                            voc.resolve(s.event),
                            s.time,
                            s.cell,
                            from,
                            to,
                        );
                    }
                }
            }
        }
        let _ = writeln!(out, "  dispatch: {}", self.stats.render());
        out
    }

    /// One-line JSON rendering for machine consumers (`lomon check
    /// --format json`): the per-property verdicts (with their diagnostics)
    /// and the full dispatch statistics, including the fusion counters.
    pub fn render_json(&self, voc: &Vocabulary) -> String {
        let mut out = String::from("{\"properties\": [");
        for (k, p) in self.properties.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"index\": {}, \"property\": \"{}\", \"verdict\": \"{}\"",
                p.index,
                json_escape(&p.property),
                p.verdict,
            );
            if let Some(violation) = &p.violation {
                let _ = write!(
                    out,
                    ", \"diagnostic\": \"{}\"",
                    json_escape(&violation.display(voc))
                );
            }
            if let Some(witness) = &p.witness {
                out.push_str(", \"witness\": [");
                for (j, s) in witness.steps.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let (from, to) = s.transition();
                    let _ = write!(
                        out,
                        "{{\"time_ps\": {}, \"event\": \"{}\", \"cell\": {}, \
                         \"from\": \"{}\", \"to\": \"{}\"}}",
                        s.time.as_ps(),
                        json_escape(voc.resolve(s.event)),
                        s.cell,
                        from,
                        to,
                    );
                }
                out.push(']');
                if witness.dropped > 0 {
                    let _ = write!(out, ", \"witness_dropped\": {}", witness.dropped);
                }
            }
            out.push('}');
        }
        let violations = self.violations().count() as u64;
        let _ = write!(
            out,
            "], \"ok\": {}, \"stats\": {}}}",
            self.is_ok(),
            self.stats.render_json_object(self.backend, violations),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use lomon_trace::{SimTime, TimedEvent};

    #[test]
    fn report_renders_verdicts_and_stats() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(&["all{a, b} << start once"], &mut voc).expect("compiles");
        let mut session = engine.session();
        let start = voc.lookup("start").unwrap();
        session.ingest(TimedEvent::new(start, SimTime::from_ns(5)));
        let report = session.finish(SimTime::from_ns(10));
        assert!(!report.is_ok());
        assert_eq!(report.violations().count(), 1);
        let text = report.render(&voc);
        assert!(
            text.contains("[violated] all{a, b} << start once"),
            "{text}"
        );
        assert!(text.contains("`start` at 5ns"), "{text}");
        assert!(text.contains("dispatch: 1 events x 1 properties"), "{text}");
        assert_eq!(report.stats.broadcast_steps(), 1);
        assert_eq!(report.stats.retired, 1);
    }

    #[test]
    fn render_shows_fusion_only_when_sharing_happened() {
        let mut voc = Vocabulary::new();
        let solo = Engine::compile(&["all{a, b} << start once"], &mut voc).expect("compiles");
        assert!(!solo.session().report().stats.render().contains("fused"));
        let shared = Engine::compile(
            &["all{a, b} << start once", "all{a, b} << start once"],
            &mut voc,
        )
        .expect("compiles");
        let line = shared.session().report().stats.render();
        assert!(line.contains("fused 4 cells into 2"), "{line}");
    }

    #[test]
    fn json_report_carries_verdicts_and_stats() {
        let mut voc = Vocabulary::new();
        let engine = Engine::compile(
            &["all{a, b} << start once", "all{a, b} << start once"],
            &mut voc,
        )
        .expect("compiles");
        let mut session = engine.session();
        let start = voc.lookup("start").unwrap();
        session.ingest(TimedEvent::new(start, SimTime::from_ns(5)));
        let report = session.finish(SimTime::from_ns(10));
        let json = report.render_json(&voc);
        assert!(json.contains("\"verdict\": \"violated\""), "{json}");
        assert!(json.contains("\"diagnostic\": "), "{json}");
        assert!(json.contains("\"ok\": false"), "{json}");
        assert!(json.contains("\"total_cells\": 4"), "{json}");
        assert!(json.contains("\"unique_cells\": 2"), "{json}");
        assert!(json.contains("\"shared_hits\": 1"), "{json}");
    }
}
