//! Translation of loose-ordering patterns into PSL (paper Section 5).
//!
//! Ranges are encoded by run-length lexing (a run `n…n` of length `k`
//! becomes the token `n⟨k⟩`), and the property becomes a big conjunction of
//! small temporal formulas. The families follow the paper, made fully
//! precise (the paper sketches them; our reconstruction is validated against
//! the independent pattern semantics by property tests):
//!
//! * **Asynch** — `always ¬(x ∧ y)` for every name pair: no two interface
//!   names at once. Trivially true in our sequence model, but counted, as
//!   the paper does.
//! * **BadToken** — runs of a ranged name with a length outside `[u,v]` are
//!   not in the encoded vocabulary: `always ¬n⟨∉u..v⟩`.
//! * **MaxOne** — `always(n⟨k⟩ → next(¬n⟨k⟩ until! I))`: each token occurs
//!   at most once per episode. One conjunct **per exact token** —
//!   `v−u+1` conjuncts per range.
//! * **Range** — `always(n⟨k⟩ → (¬n⟨k'⟩ until! I))` for each ordered pair of
//!   distinct tokens of one range: at most one token per range per episode.
//!   `(v−u+1)·(v−u)` conjuncts — **the quadratic blow-up** of Fig. 6.
//! * **Order** — `always(TOK(x) → (¬TOK(y) until! I))` for names `x` of a
//!   fragment and `y` of the *preceding* fragment: once a fragment starts,
//!   the previous one is over.
//! * **Precede** — `¬TOK(F_j) until! TOK(R)` for each range `R` of the
//!   preceding fragment (folded into one disjunctive target for
//!   `∨`-fragments): a fragment may not start before its predecessor is
//!   complete. (Re-armed at each episode boundary when repeated.)
//! * **BeforeI** / **AfterI** — `¬I until! TOK(R)` for every range of every
//!   fragment: the whole antecedent is observed before the trigger; when
//!   repeated, the same obligations re-arm right after each trigger.
//!
//! `I` is the *episode boundary*: the trigger token `i⟨1⟩` for an antecedent
//! `(P << i, b)`, or the tokens of `Q`'s final range for a timed implication
//! (paper: "consider the end of Q as the reset point"). Timed implications
//! whose response ends in a multi-range fragment have no single reset token
//! and are reported as [`TranslateError::Unsupported`] (all the paper's
//! configurations end in a single range).
//!
//! Each conjunct also yields one **observer** — the modular sub-monitor of
//! the Pierre & Ferro style synthesis — whose runtime cost is proportional
//! to the conjunct's (expanded) formula size. That proportionality is the
//! paper's ViaPSL cost model; see [`crate::monitor`] and
//! [`crate::complexity`].

use lomon_core::ast::{Fragment, FragmentOp, Property, Range};
use lomon_trace::{LexedToken, Name, NameSet, Vocabulary};

use crate::ast::{Psl, TokenTest};

/// A disjunctive set of token predicates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenSet(pub Vec<TokenTest>);

impl TokenSet {
    /// Whether any predicate matches.
    pub fn matches(&self, token: LexedToken) -> bool {
        self.0.iter().any(|t| t.matches(token))
    }

    /// The expanded formula weight of the disjunction.
    pub fn weight(&self) -> u64 {
        let total: u64 = self
            .0
            .iter()
            .map(|t| t.expanded_width().map_or(1, |w| 2 * w - 1))
            .sum();
        if self.0.len() > 1 {
            total + 1 // the disjunction node
        } else {
            total
        }
    }

    /// The disjunction as a formula.
    pub fn formula(&self) -> Psl {
        Psl::or(self.0.iter().map(|&t| Psl::Atom(t)).collect())
    }

    /// Render as `a⟨1⟩ ∨ b⟨2..4⟩` for diagnostics.
    pub fn display(&self, voc: &Vocabulary) -> String {
        self.0
            .iter()
            .map(|t| t.display(voc))
            .collect::<Vec<_>>()
            .join(" ∨ ")
    }
}

/// The conjunct family an observer belongs to (for diagnostics and the
/// per-family cost breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `always ¬(x ∧ y)`.
    Asynch,
    /// `always ¬n⟨∉u..v⟩`.
    BadToken,
    /// `always(t → X(¬t U! I))`.
    MaxOne,
    /// `always(t → (¬t' U! I))`.
    Range,
    /// `always(TOK(x) → (¬TOK(y) U! I))`.
    Order,
    /// `¬TOK(F_j) U! TOK(R)` (+ re-arm).
    Precede,
    /// `¬I U! TOK(R)` (+ re-arm = AfterI).
    BeforeI,
}

impl Family {
    /// The paper's name for the family.
    pub fn label(self) -> &'static str {
        match self {
            Family::Asynch => "Asynch",
            Family::BadToken => "BadToken",
            Family::MaxOne => "MaxOne",
            Family::Range => "Range",
            Family::Order => "Order",
            Family::Precede => "Precede",
            Family::BeforeI => "BeforeI/AfterI",
        }
    }
}

/// One modular sub-monitor, corresponding to one conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observer {
    /// Never fires in the sequence model; carries its formula weight.
    Asynch {
        /// First name of the pair.
        x: Name,
        /// Second name of the pair.
        y: Name,
    },
    /// Fires when an ill-length token appears.
    Forbid {
        /// The ill-length predicate.
        test: TokenTest,
        /// For one-shot properties the invariant only holds up to the first
        /// episode boundary: `Some(I)` scopes the conjunct with `W I`.
        scope: Option<TokenSet>,
    },
    /// The triggered-until obligation shared by MaxOne/Range/Order/Precede/
    /// BeforeI: while *active*, a `target` token discharges it and an
    /// `avoid` token violates it; `triggers` (re-)arm it.
    Triggered {
        /// Which family the conjunct belongs to.
        family: Family,
        /// Active at episode start (Precede/BeforeI).
        init_active: bool,
        /// Tokens that arm the obligation.
        triggers: TokenSet,
        /// Tokens that violate an active obligation.
        avoid: TokenSet,
        /// Tokens that discharge an active obligation.
        target: TokenSet,
        /// For one-shot properties, `Some(I)` scopes the conjunct with
        /// `W I` (constraints stop applying after the first boundary).
        scope: Option<TokenSet>,
    },
}

impl Observer {
    /// The family of this observer.
    pub fn family(&self) -> Family {
        match self {
            Observer::Asynch { .. } => Family::Asynch,
            Observer::Forbid { .. } => Family::BadToken,
            Observer::Triggered { family, .. } => *family,
        }
    }

    /// The expanded formula weight of the corresponding conjunct — the
    /// per-event work the modular synthesis spends on it.
    pub fn weight(&self) -> u64 {
        conjunct_weight(self)
    }
}

/// A complete translation: observers + materialized formula + lexer config.
#[derive(Debug, Clone)]
pub struct Translation {
    /// One observer per conjunct.
    pub observers: Vec<Observer>,
    /// The whole property as one PSL conjunction (compact symbolic atoms).
    pub formula: Psl,
    /// Ranged names the run-length lexer must collapse, with their bounds.
    pub collapsible: Vec<Range>,
    /// The episode-boundary token set `I`.
    pub trigger: TokenSet,
    /// Whether episodes repeat (`b` for antecedents; always for timed).
    pub repeated: bool,
    /// The property alphabet (projection set).
    pub alphabet: NameSet,
}

/// Why a property could not be translated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The pattern shape is outside the encoding's domain.
    Unsupported(String),
    /// Materializing would exceed the conjunct budget (use
    /// [`crate::complexity::viapsl_cost`] for the closed-form size instead).
    TooLarge {
        /// Conjuncts the translation would need.
        conjuncts: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Unsupported(why) => write!(f, "unsupported pattern: {why}"),
            TranslateError::TooLarge { conjuncts, limit } => write!(
                f,
                "translation needs {conjuncts} conjuncts, over the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Options for [`translate`].
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// Upper bound on materialized conjuncts (the Range family alone needs
    /// `(v−u+1)(v−u)` of them per range).
    pub conjunct_limit: u64,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            conjunct_limit: 200_000,
        }
    }
}

/// The normalized shape shared by both root patterns: content fragments
/// followed by an episode-boundary token set.
pub(crate) struct EpisodeShape {
    pub content: Vec<Fragment>,
    pub trigger: TokenSet,
    pub trigger_range: Option<Range>,
    pub repeated: bool,
    pub alphabet: NameSet,
}

pub(crate) fn episode_shape(property: &Property) -> Result<EpisodeShape, TranslateError> {
    match property {
        Property::Antecedent(a) => Ok(EpisodeShape {
            content: a.antecedent.fragments.clone(),
            trigger: TokenSet(vec![TokenTest::Exact {
                name: a.trigger,
                run: 1,
            }]),
            trigger_range: None,
            repeated: a.repeated,
            alphabet: a.alpha(),
        }),
        Property::Timed(t) => {
            let mut content = t.premise.fragments.clone();
            content.extend(t.response.fragments.iter().cloned());
            let last = content.pop().expect("well-formed response is non-empty");
            if last.ranges.len() != 1 {
                return Err(TranslateError::Unsupported(
                    "the response must end in a single-range fragment to have \
                     a well-defined reset point"
                        .into(),
                ));
            }
            let range = last.ranges[0].clone();
            let trigger = TokenSet(vec![token_of(&range)]);
            Ok(EpisodeShape {
                content,
                trigger,
                trigger_range: Some(range),
                repeated: true,
                alphabet: t.alpha(),
            })
        }
    }
}

/// The symbolic "some token of R" predicate.
fn token_of(range: &Range) -> TokenTest {
    if range.is_trivial() {
        TokenTest::Exact {
            name: range.name,
            run: 1,
        }
    } else {
        TokenTest::InRange {
            name: range.name,
            lo: range.min,
            hi: range.max,
        }
    }
}

/// Tokens of a whole fragment (union over its ranges).
fn tokens_of_fragment(fragment: &Fragment) -> TokenSet {
    TokenSet(fragment.ranges.iter().map(token_of).collect())
}

/// Expanded formula weight of one conjunct (must stay consistent with
/// [`conjunct_formula`]; checked by tests against
/// [`Psl::expanded_node_count`]).
fn conjunct_weight(observer: &Observer) -> u64 {
    match observer {
        // always(not(and(x, y))) = 5 nodes with name-level atoms.
        Observer::Asynch { .. } => 5,
        // always(not(atom)) = 3 nodes; W-scoping replaces the `always` by a
        // weak until with the boundary disjunction as second operand.
        Observer::Forbid { scope, .. } => 3 + scope.as_ref().map_or(0, TokenSet::weight),
        Observer::Triggered {
            family,
            init_active,
            triggers,
            avoid,
            target,
            scope,
        } => {
            // body = until(not(avoid), target)
            let body = 1 + 1 + avoid.weight() + target.weight();
            let scope_w = scope.as_ref().map_or(0, TokenSet::weight);
            match family {
                // always(implies(t, next(body_until)))  [W-scoped: +scope]
                Family::MaxOne => 3 + triggers.weight() + body + scope_w,
                // always(implies(t, body_until))  [W-scoped: +scope]
                Family::Range | Family::Order => 2 + triggers.weight() + body + scope_w,
                // Precede/BeforeI: body [∧ always(trig → next(body))]
                Family::Precede | Family::BeforeI => {
                    debug_assert!(*init_active);
                    if triggers.0.is_empty() {
                        body
                    } else {
                        1 + body + (3 + triggers.weight() + body)
                    }
                }
                Family::Asynch | Family::BadToken => unreachable!("not Triggered"),
            }
        }
    }
}

/// The PSL formula of one conjunct (compact symbolic atoms).
fn conjunct_formula(observer: &Observer) -> Psl {
    match observer {
        Observer::Asynch { x, y } => Psl::always(Psl::not(Psl::And(vec![
            Psl::Atom(TokenTest::AnyRun { name: *x }),
            Psl::Atom(TokenTest::AnyRun { name: *y }),
        ]))),
        Observer::Forbid { test, scope } => {
            let inner = Psl::not(Psl::Atom(*test));
            match scope {
                Some(i) => Psl::weak_until(inner, i.formula()),
                None => Psl::always(inner),
            }
        }
        Observer::Triggered {
            family,
            init_active,
            triggers,
            avoid,
            target,
            scope,
        } => {
            let body = || Psl::until(Psl::not(avoid.formula()), target.formula());
            let wrap = |inner: Psl| match scope {
                Some(i) => Psl::weak_until(inner, i.formula()),
                None => Psl::always(inner),
            };
            match family {
                Family::MaxOne => wrap(Psl::implies(triggers.formula(), Psl::next(body()))),
                Family::Range | Family::Order => wrap(Psl::implies(triggers.formula(), body())),
                Family::Precede | Family::BeforeI => {
                    debug_assert!(*init_active);
                    if triggers.0.is_empty() {
                        body()
                    } else {
                        Psl::And(vec![
                            body(),
                            Psl::always(Psl::implies(triggers.formula(), Psl::next(body()))),
                        ])
                    }
                }
                Family::Asynch | Family::BadToken => unreachable!("not Triggered"),
            }
        }
    }
}

/// Translate a (well-formed) property into observers + formula.
///
/// # Errors
///
/// [`TranslateError::Unsupported`] for timed implications without a
/// single-range reset point; [`TranslateError::TooLarge`] when the conjunct
/// count exceeds `options.conjunct_limit` (as it does for
/// `n[100,60000]`-style ranges — use the closed-form cost instead).
pub fn translate(
    property: &Property,
    options: TranslateOptions,
) -> Result<Translation, TranslateError> {
    let shape = episode_shape(property)?;
    let needed = crate::complexity::conjunct_count(property)?;
    if needed > options.conjunct_limit {
        return Err(TranslateError::TooLarge {
            conjuncts: needed,
            limit: options.conjunct_limit,
        });
    }

    let mut observers = Vec::new();
    let content = &shape.content;
    let trigger = &shape.trigger;
    // The trigger tokens that re-arm per-episode obligations.
    let rearm = if shape.repeated {
        trigger.clone()
    } else {
        TokenSet::default()
    };
    // For one-shot properties the invariant conjuncts stop applying after
    // the first (validated) boundary.
    let scope = if shape.repeated {
        None
    } else {
        Some(trigger.clone())
    };

    // Asynch: every unordered pair of names of α.
    let names: Vec<Name> = shape.alphabet.iter().collect();
    for (ix, &x) in names.iter().enumerate() {
        for &y in &names[ix + 1..] {
            observers.push(Observer::Asynch { x, y });
        }
    }

    // BadToken: ill-length runs of every non-trivial range (incl. trigger).
    let mut all_ranges: Vec<&Range> = content.iter().flat_map(|f| f.ranges.iter()).collect();
    if let Some(r) = &shape.trigger_range {
        all_ranges.push(r);
    }
    for range in &all_ranges {
        if !range.is_trivial() {
            observers.push(Observer::Forbid {
                test: TokenTest::OutsideRange {
                    name: range.name,
                    lo: range.min,
                    hi: range.max,
                },
                scope: scope.clone(),
            });
        }
    }

    // MaxOne and Range: per exact token (pair) of each content range.
    for fragment in content {
        for range in &fragment.ranges {
            for k in range.min..=range.max {
                let t = TokenTest::Exact {
                    name: range.name,
                    run: k,
                };
                observers.push(Observer::Triggered {
                    family: Family::MaxOne,
                    init_active: false,
                    triggers: TokenSet(vec![t]),
                    avoid: TokenSet(vec![t]),
                    target: trigger.clone(),
                    scope: scope.clone(),
                });
                for k2 in range.min..=range.max {
                    if k2 != k {
                        observers.push(Observer::Triggered {
                            family: Family::Range,
                            init_active: false,
                            triggers: TokenSet(vec![t]),
                            avoid: TokenSet(vec![TokenTest::Exact {
                                name: range.name,
                                run: k2,
                            }]),
                            target: trigger.clone(),
                            scope: scope.clone(),
                        });
                    }
                }
            }
        }
    }

    // Order: name pairs of adjacent fragments.
    for j in 1..content.len() {
        for x in &content[j].ranges {
            for y in &content[j - 1].ranges {
                observers.push(Observer::Triggered {
                    family: Family::Order,
                    init_active: false,
                    triggers: TokenSet(vec![token_of(x)]),
                    avoid: TokenSet(vec![token_of(y)]),
                    target: trigger.clone(),
                    scope: scope.clone(),
                });
            }
        }
    }

    // Precede: a fragment may not start before its predecessor completes.
    for j in 1..content.len() {
        let avoid = tokens_of_fragment(&content[j]);
        for target in fragment_obligations(&content[j - 1]) {
            observers.push(Observer::Triggered {
                family: Family::Precede,
                init_active: true,
                triggers: rearm.clone(),
                avoid: avoid.clone(),
                target,
                scope: None,
            });
        }
    }

    // BeforeI/AfterI: every fragment observed before each episode boundary.
    for fragment in content {
        for target in fragment_obligations(fragment) {
            observers.push(Observer::Triggered {
                family: Family::BeforeI,
                init_active: true,
                triggers: rearm.clone(),
                avoid: trigger.clone(),
                target,
                scope: None,
            });
        }
    }

    let formula = Psl::and(observers.iter().map(conjunct_formula).collect());
    let collapsible = all_ranges
        .iter()
        .filter(|r| !r.is_trivial())
        .map(|&r| r.clone())
        .collect();

    Ok(Translation {
        observers,
        formula,
        collapsible,
        trigger: shape.trigger,
        repeated: shape.repeated,
        alphabet: shape.alphabet,
    })
}

/// The per-fragment observation obligations: one target per range for `∧`,
/// one disjunctive target for `∨`.
fn fragment_obligations(fragment: &Fragment) -> Vec<TokenSet> {
    match fragment.op {
        FragmentOp::All => fragment
            .ranges
            .iter()
            .map(|r| TokenSet(vec![token_of(r)]))
            .collect(),
        FragmentOp::Any => vec![tokens_of_fragment(fragment)],
    }
}

/// Convenience: translate `P << i` / `P ⇒ Q` described by an ordering and a
/// trigger (used by tests).
pub fn translate_default(property: &Property) -> Result<Translation, TranslateError> {
    translate(property, TranslateOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lomon_core::ast::{Antecedent, TimedImplication};
    use lomon_core::parse::parse_property;
    use lomon_trace::SimTime;

    fn parse(text: &str) -> (Vocabulary, Property) {
        let mut voc = Vocabulary::new();
        let p = parse_property(text, &mut voc).expect(text);
        (voc, p)
    }

    fn count_family(t: &Translation, family: Family) -> usize {
        t.observers.iter().filter(|o| o.family() == family).count()
    }

    #[test]
    fn row1_structure() {
        // (n << i, true)
        let (_voc, p) = parse("n << i repeated");
        let t = translate_default(&p).expect("translates");
        assert_eq!(count_family(&t, Family::Asynch), 1); // pair (n, i)
        assert_eq!(count_family(&t, Family::BadToken), 0); // trivial range
        assert_eq!(count_family(&t, Family::MaxOne), 1);
        assert_eq!(count_family(&t, Family::Range), 0);
        assert_eq!(count_family(&t, Family::Order), 0);
        assert_eq!(count_family(&t, Family::Precede), 0);
        assert_eq!(count_family(&t, Family::BeforeI), 1);
        assert!(t.repeated);
        assert!(t.collapsible.is_empty());
    }

    #[test]
    fn ranged_row_blows_up_quadratically() {
        let (_voc, p) = parse("n[2,8] << i repeated");
        let t = translate_default(&p).expect("translates");
        // width 7: 7 MaxOne + 7·6 Range conjuncts.
        assert_eq!(count_family(&t, Family::MaxOne), 7);
        assert_eq!(count_family(&t, Family::Range), 42);
        assert_eq!(count_family(&t, Family::BadToken), 1);
        assert_eq!(t.collapsible.len(), 1);
    }

    #[test]
    fn huge_range_hits_the_limit() {
        let (_voc, p) = parse("n[100,60000] << i repeated");
        match translate_default(&p) {
            Err(TranslateError::TooLarge { conjuncts, .. }) => {
                // ≈ 59901² conjuncts from the Range family alone.
                assert!(conjuncts > 3_000_000_000);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn fig4_structure() {
        let (_voc, p) = parse("all{n1, n2} < any{n3[2,8], n4} < n5 << i once");
        let t = translate_default(&p).expect("translates");
        // Order pairs: |F2|·|F1| + |F3|·|F2| = 2·2 + 1·2 = 6.
        assert_eq!(count_family(&t, Family::Order), 6);
        // Precede: F1 is ∧ (2 obligations), F2 is ∨ (1 obligation) = 3.
        assert_eq!(count_family(&t, Family::Precede), 3);
        // BeforeI: F1 ∧ → 2, F2 ∨ → 1, F3 → 1 = 4.
        assert_eq!(count_family(&t, Family::BeforeI), 4);
        // One-shot: no re-arm triggers on the obligations.
        assert!(!t.repeated);
        for o in &t.observers {
            if let Observer::Triggered {
                triggers, family, ..
            } = o
            {
                if matches!(family, Family::Precede | Family::BeforeI) {
                    assert!(triggers.0.is_empty());
                }
            }
        }
    }

    #[test]
    fn timed_reset_point_is_final_range() {
        let (_voc, p) = parse("start => read_img[2,4] < set_irq within 1 ms");
        let t = translate_default(&p).expect("translates");
        // Trigger = set_irq⟨1⟩; content = [start][read_img[2,4]].
        assert_eq!(t.trigger.0.len(), 1);
        assert!(t.repeated);
        assert_eq!(count_family(&t, Family::MaxOne), 1 + 3); // start + 3 read tokens
        assert_eq!(count_family(&t, Family::Range), 6); // 3·2 read pairs
        assert_eq!(count_family(&t, Family::Order), 1); // (read, start)
        assert_eq!(count_family(&t, Family::BadToken), 1); // read_img
        assert_eq!(t.collapsible.len(), 1);
    }

    #[test]
    fn timed_with_ranged_reset_point() {
        let (_voc, p) = parse("start => read_img[2,4] within 1 ms");
        let t = translate_default(&p).expect("translates");
        // The reset point is the read range itself: its tokens form I.
        assert_eq!(t.trigger.0.len(), 1);
        assert!(matches!(
            t.trigger.0[0],
            TokenTest::InRange { lo: 2, hi: 4, .. }
        ));
        // read_img is the trigger, not content: no MaxOne for it.
        assert_eq!(count_family(&t, Family::MaxOne), 1); // start only
    }

    #[test]
    fn timed_multi_range_reset_is_unsupported() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let o1 = voc.output("o1");
        let o2 = voc.output("o2");
        let p: Property = TimedImplication::new(
            lomon_core::ast::LooseOrdering::new(vec![Fragment::singleton(Range::once(a))]),
            lomon_core::ast::LooseOrdering::new(vec![Fragment::new(
                FragmentOp::All,
                vec![Range::once(o1), Range::once(o2)],
            )]),
            SimTime::from_ns(10),
        )
        .into();
        assert!(matches!(
            translate_default(&p),
            Err(TranslateError::Unsupported(_))
        ));
    }

    #[test]
    fn observer_weights_match_formula_sizes() {
        for text in [
            "n << i repeated",
            "n[2,8] << i repeated",
            "all{n1, n2} < any{n3[2,8], n4} < n5 << i once",
            "all{a, b, c} << go repeated",
            "start => read_img[2,4] < set_irq within 1 ms",
        ] {
            let (_voc, p) = parse(text);
            let t = translate_default(&p).expect(text);
            for o in &t.observers {
                let formula = conjunct_formula(o);
                assert_eq!(
                    o.weight(),
                    formula.expanded_node_count(),
                    "weight mismatch for {o:?} in {text}"
                );
            }
        }
    }

    #[test]
    fn formula_displays_paper_shapes() {
        let (voc, p) = parse("n << i repeated");
        let t = translate_default(&p).expect("translates");
        let text = t.formula.display(&voc);
        assert!(text.contains("always("), "{text}");
        assert!(text.contains("until!"), "{text}");
        assert!(text.contains("n⟨1⟩"), "{text}");
    }

    #[test]
    fn antecedent_shape_uses_exact_trigger() {
        let mut voc = Vocabulary::new();
        let n = voc.input("n");
        let i = voc.input("i");
        let p: Property = Antecedent::new(
            lomon_core::ast::LooseOrdering::new(vec![Fragment::singleton(Range::once(n))]),
            i,
            true,
        )
        .into();
        let shape = episode_shape(&p).expect("shape");
        assert_eq!(shape.trigger.0, vec![TokenTest::Exact { name: i, run: 1 }]);
        assert!(shape.repeated);
        assert!(shape.trigger_range.is_none());
    }
}
