//! Hot-loop cost of one monitored event: the fused rulebook backend vs
//! per-property compiled flat tables vs the tree-walking interpreter.
//!
//! Four workloads, all through an indexed-dispatch engine [`Session`]:
//!
//! * `single` — one antecedent property, every event steps one monitor;
//! * `disjoint-50` — 50 properties over pairwise-disjoint alphabets, the
//!   index routes every event to exactly one monitor (per-step cost with
//!   dispatch overhead amortized over one step);
//! * `overlap-50` / `overlap-200` — 50 / 200 properties over one *shared*
//!   alphabet, every event concerns every property (dominant in practice
//!   when rulebooks watch the same interface). The property texts repeat
//!   with a small period, so the fused backend dedups them into a handful
//!   of unique recognizer groups and steps *those* once per event,
//!   fanning the verdicts back out — the overlap workloads are where the
//!   cross-property sharing pays.
//!
//! Run `cargo run -p lomon-bench --bin hot_loop --release` to print the
//! table and (re)write the machine-readable `BENCH_hot_loop.json` at the
//! current directory (the repo tracks it at the root as the perf
//! trajectory anchor).
//!
//! `--check` is the CI gate: all three backends must agree on every
//! verdict *and* every per-property ops counter, the compiled backend
//! must be at least [`GATE_SPEEDUP`]× faster (ns/event) than the
//! interpreter on the multi-property workloads, and the fused backend
//! must be at least [`FUSED_GATE_SPEEDUP`]× faster than compiled on the
//! overlapping workloads. With `--baseline <path>` the fresh speedups are
//! additionally compared against the committed `BENCH_hot_loop.json`: a
//! drop below [`BASELINE_TOLERANCE`] of a recorded speedup fails the run
//! — the floor that ratchets up as future optimization PRs commit better
//! baselines. The `single` workload is reported but not gated — with one
//! monitor per event the session's fixed dispatch overhead dilutes the
//! ratios and makes them noisy.

use std::process::ExitCode;
use std::time::Instant;

use lomon_bench::workloads::{disjoint, overlapping};
use lomon_core::analysis::prune_dead;
use lomon_core::Monitor as _;
use lomon_engine::{Backend, DispatchMode, Engine, Session};
use lomon_trace::{NameSet, SimTime, TimedEvent};

/// The CI gate: compiled must beat interpreted by at least this factor on
/// the gated multi-property workloads. The static floor sits below the
/// measured ~3.0–3.5× because the check matrix's small event budget puts
/// run-to-run noise at roughly ±0.2× on the disjoint ratio; the binding
/// regression guard is the `--baseline` ratchet ([`BASELINE_TOLERANCE`] ×
/// the committed speedups, ≈2.6× at today's `BENCH_hot_loop.json`).
const GATE_SPEEDUP: f64 = 2.5;

/// The fused gate: the fused rulebook backend must beat per-property
/// compiled by at least this factor on the overlapping workloads (where
/// structural dedup actually shares work).
const FUSED_GATE_SPEEDUP: f64 = 2.0;

/// A fresh speedup below `tolerance × committed` fails `--baseline`.
const BASELINE_TOLERANCE: f64 = 0.8;

/// Timed repetitions per (workload, backend); the minimum is reported.
/// Interleaved between the backends (see `run_trio`) so load drift on a
/// shared machine cannot skew the ratios.
const REPS: usize = 9;

struct Workload {
    name: &'static str,
    /// Whether the `--check` compiled-vs-interp speedup gate applies.
    gated: bool,
    /// Whether the `--check` fused-vs-compiled speedup gate applies.
    fused_gated: bool,
    engine: Engine,
    events: Vec<TimedEvent>,
}

struct Measurement {
    nanos_per_event: f64,
    verdicts: Vec<(lomon_core::Verdict, u64)>,
}

/// One timed replay of `events` through `session` (reset first).
fn replay(session: &mut Session<'_>, events: &[TimedEvent], end: SimTime) -> u128 {
    session.reset();
    let started = Instant::now();
    session.ingest_batch(events);
    session.close(end);
    started.elapsed().as_nanos()
}

/// Measure all three backends over the same workload, **interleaved** rep
/// by rep so machine-load drift hits every backend equally instead of
/// skewing the ratios; the minimum of each is reported.
fn run_trio(engine: &Engine, events: &[TimedEvent]) -> [Measurement; 3] {
    let end = events.last().map(|e| e.time).unwrap_or(SimTime::ZERO);
    let backends = [Backend::Interp, Backend::Compiled, Backend::Fused];
    let mut sessions: Vec<Session<'_>> = backends
        .iter()
        .map(|&b| engine.session_with_backend(DispatchMode::Indexed, b))
        .collect();
    let mut best = [u128::MAX; 3];
    for _ in 0..REPS {
        for (session, best) in sessions.iter_mut().zip(&mut best) {
            *best = (*best).min(replay(session, events, end));
        }
    }
    let digest = |s: &Session<'_>| -> Vec<(lomon_core::Verdict, u64)> {
        (0..engine.len())
            .map(|id| (s.verdict(id), s.ops(id)))
            .collect()
    };
    let mut out = Vec::with_capacity(3);
    for (session, best) in sessions.iter().zip(&best) {
        out.push(Measurement {
            nanos_per_event: *best as f64 / events.len() as f64,
            verdicts: digest(session),
        });
    }
    out.try_into()
        .unwrap_or_else(|_| unreachable!("exactly three backends measured"))
}

struct Row {
    name: &'static str,
    gated: bool,
    fused_gated: bool,
    events: usize,
    interp_ns: f64,
    compiled_ns: f64,
    fused_ns: f64,
}

impl Row {
    /// Compiled over interpreted — the flat-table lowering's win.
    fn speedup(&self) -> f64 {
        self.interp_ns / self.compiled_ns.max(f64::MIN_POSITIVE)
    }

    /// Fused over compiled — the cross-property sharing's win.
    fn fused_speedup(&self) -> f64 {
        self.compiled_ns / self.fused_ns.max(f64::MIN_POSITIVE)
    }

    fn fused_events_per_sec(&self) -> f64 {
        1e9 / self.fused_ns.max(f64::MIN_POSITIVE)
    }
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"hot_loop\",\n  \"unit\": \"ns/event\",\n");
    out.push_str("  \"workloads\": [\n");
    for (k, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"gated\": {}, \"fused_gated\": {}, \"events\": {}, \
             \"interp_ns_per_event\": {:.2}, \"compiled_ns_per_event\": {:.2}, \
             \"fused_ns_per_event\": {:.2}, \"speedup\": {:.2}, \"fused_speedup\": {:.2}, \
             \"fused_events_per_sec\": {:.0}}}{}\n",
            row.name,
            row.gated,
            row.fused_gated,
            row.events,
            row.interp_ns,
            row.compiled_ns,
            row.fused_ns,
            row.speedup(),
            row.fused_speedup(),
            row.fused_events_per_sec(),
            if k + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(name, speedup, fused_speedup)` triples from a committed
/// `BENCH_hot_loop.json`. The file is written one workload object per line
/// (see [`render_json`]), so a line scanner is all the parsing needed;
/// `fused_speedup` is `None` for baselines predating the fused backend.
fn parse_baseline(text: &str) -> Vec<(String, f64, Option<f64>)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = line[at..].trim_start_matches([':', ' ', '"']);
        let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
        Some(rest[..end].to_owned())
    };
    text.lines()
        .filter_map(|line| {
            let name = field(line, "\"name\"")?;
            let speedup = field(line, "\"speedup\"")?.parse().ok()?;
            let fused = field(line, "\"fused_speedup\"").and_then(|v| v.parse().ok());
            Some((name, speedup, fused))
        })
        .collect()
}

/// `--check` extension for the lint `--fix-prune` contract: restrict the
/// fused rulebook to the workload's own event corpus, prune the dead
/// action-table rows ([`prune_dead`]), and replay the workload through
/// both rulebooks step by step — every per-group verdict, at every event
/// and at finish, must be identical.
fn prune_identical(engine: &Engine, events: &[TimedEvent]) -> bool {
    let corpus: NameSet = events.iter().map(|e| e.name).collect();
    let outcome = prune_dead(engine.fused(), Some(&corpus), 1 << 20);
    let mut original = engine.fused().instantiate();
    let mut pruned = outcome.fused.instantiate();
    let end = events.last().map(|e| e.time).unwrap_or(SimTime::ZERO);
    for event in events {
        for (o, p) in original.iter_mut().zip(pruned.iter_mut()) {
            if o.observe(*event) != p.observe(*event) {
                return false;
            }
        }
    }
    original
        .iter_mut()
        .zip(pruned.iter_mut())
        .all(|(o, p)| o.finish(end) == p.finish(end))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|at| args.get(at + 1).cloned());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|at| args.get(at + 1).cloned());

    // The check matrix is smaller so the CI gate stays fast; the ratios it
    // gates are per-event and stable across the sizes.
    let (single_rounds, multi_rounds) = if check_mode {
        (20_000, 2_000)
    } else {
        (100_000, 10_000)
    };

    let workloads: Vec<Workload> = vec![
        {
            let (engine, events) = disjoint(1, single_rounds);
            Workload {
                name: "single",
                gated: false,
                fused_gated: false,
                engine,
                events,
            }
        },
        {
            // No structural overlap: fused degenerates to compiled (50
            // singleton groups), so only the compiled-vs-interp gate
            // applies.
            let (engine, events) = disjoint(50, multi_rounds);
            Workload {
                name: "disjoint-50",
                gated: true,
                fused_gated: false,
                engine,
                events,
            }
        },
        {
            // Same event budget shape as disjoint-50, but every event
            // concerns all 50 properties (6 unique groups under fusion).
            let (engine, events) = overlapping(50, multi_rounds * 5);
            Workload {
                name: "overlap-50",
                gated: true,
                fused_gated: true,
                engine,
                events,
            }
        },
        {
            // The SMC/NISTT scaling shape: hundreds of properties over one
            // small bus alphabet. Per-property cost grows 4× from
            // overlap-50; the fused sweep still steps 6 unique groups.
            let (engine, events) = overlapping(200, multi_rounds * 5);
            Workload {
                name: "overlap-200",
                gated: true,
                fused_gated: true,
                engine,
                events,
            }
        },
    ];

    println!("hot loop — fused rulebook vs compiled flat tables vs interpreter (best of {REPS})");
    println!(
        "{:>12} {:>9} {:>12} {:>12} {:>10} {:>8} {:>8} {:>14}",
        "workload",
        "events",
        "interp ns/ev",
        "compiled ns",
        "fused ns",
        "cmp/itp",
        "fsd/cmp",
        "fused ev/s"
    );

    let mut rows = Vec::new();
    let mut identical = true;
    for w in &workloads {
        let [interp, compiled, fused] = run_trio(&w.engine, &w.events);
        // Differential gate: same verdict and same ops counter for every
        // property across all three backends, or one of them has diverged.
        for id in 0..w.engine.len() {
            let (i, c, f) = (
                &interp.verdicts[id],
                &compiled.verdicts[id],
                &fused.verdicts[id],
            );
            if i != c || c != f {
                eprintln!(
                    "MISMATCH: workload {} property {id}: interp {:?} vs compiled {:?} \
                     vs fused {:?}",
                    w.name, i, c, f
                );
                identical = false;
            }
        }
        let row = Row {
            name: w.name,
            gated: w.gated,
            fused_gated: w.fused_gated,
            events: w.events.len(),
            interp_ns: interp.nanos_per_event,
            compiled_ns: compiled.nanos_per_event,
            fused_ns: fused.nanos_per_event,
        };
        println!(
            "{:>12} {:>9} {:>12.1} {:>12.1} {:>10.1} {:>7.1}x {:>7.1}x {:>14.0}",
            row.name,
            row.events,
            row.interp_ns,
            row.compiled_ns,
            row.fused_ns,
            row.speedup(),
            row.fused_speedup(),
            row.fused_events_per_sec(),
        );
        rows.push(row);
    }
    println!();

    let mut ok = identical;
    if !identical {
        println!("FAIL: backends disagree on verdicts or ops counters");
    }

    if check_mode {
        for w in &workloads {
            if !prune_identical(&w.engine, &w.events) {
                println!(
                    "FAIL: {}: pruning the corpus-dead action-table rows changed a verdict",
                    w.name
                );
                ok = false;
            }
        }
        for row in rows.iter().filter(|r| r.gated) {
            if row.speedup() < GATE_SPEEDUP {
                println!(
                    "FAIL: {} compiled speedup {:.2}x below the {GATE_SPEEDUP}x gate",
                    row.name,
                    row.speedup()
                );
                ok = false;
            }
        }
        for row in rows.iter().filter(|r| r.fused_gated) {
            if row.fused_speedup() < FUSED_GATE_SPEEDUP {
                println!(
                    "FAIL: {} fused speedup {:.2}x below the {FUSED_GATE_SPEEDUP}x gate",
                    row.name,
                    row.fused_speedup()
                );
                ok = false;
            }
        }
        if let Some(path) = &baseline_path {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let committed = parse_baseline(&text);
                    for row in rows.iter().filter(|r| r.gated || r.fused_gated) {
                        let Some((_, base, fused_base)) =
                            committed.iter().find(|(n, _, _)| n == row.name)
                        else {
                            println!("FAIL: baseline {path} has no workload `{}`", row.name);
                            ok = false;
                            continue;
                        };
                        let mut ratchets = vec![];
                        if row.gated {
                            ratchets.push(("compiled", row.speedup(), *base));
                        }
                        if row.fused_gated {
                            if let Some(fused_base) = fused_base {
                                ratchets.push(("fused", row.fused_speedup(), *fused_base));
                            }
                        }
                        for (label, fresh, committed) in ratchets {
                            let floor = committed * BASELINE_TOLERANCE;
                            if fresh < floor {
                                println!(
                                    "FAIL: {} {label} speedup {fresh:.2}x regressed below \
                                     {floor:.2}x ({BASELINE_TOLERANCE} x committed \
                                     {committed:.2}x)",
                                    row.name,
                                );
                                ok = false;
                            }
                        }
                    }
                }
                Err(e) => {
                    println!("FAIL: cannot read baseline {path}: {e}");
                    ok = false;
                }
            }
        }
        if ok {
            println!(
                "OK: backends verdict- and ops-identical; compiled >= {GATE_SPEEDUP}x interp \
                 on the multi-property workloads; fused >= {FUSED_GATE_SPEEDUP}x compiled on \
                 the overlapping workloads"
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        let path = out_path.unwrap_or_else(|| "BENCH_hot_loop.json".to_owned());
        match std::fs::write(&path, render_json(&rows)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
