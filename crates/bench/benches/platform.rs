//! Criterion S3: full face-recognition scenario runs, with and without the
//! online monitors (the Fig. 1 framework's runtime cost).

use criterion::{criterion_group, criterion_main, Criterion};

use lomon_tlm::scenario::{run_scenario, ScenarioConfig};

fn bench_platform(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform");
    group.sample_size(20);
    group.bench_function("scenario/monitored", |b| {
        b.iter(|| {
            let config = ScenarioConfig::nominal(7);
            let report = run_scenario(&config);
            assert!(report.all_ok());
            report.stats.dispatched
        });
    });
    group.bench_function("scenario/bare", |b| {
        b.iter(|| {
            let mut config = ScenarioConfig::nominal(7);
            config.monitors = false;
            let report = run_scenario(&config);
            report.stats.dispatched
        });
    });
    group.finish();
}

criterion_group!(benches, bench_platform);
criterion_main!(benches);
