//! Probability estimation with Chernoff–Hoeffding confidence bounds.
//!
//! An SMC campaign treats each episode as a Bernoulli trial per property —
//! the episode either satisfies the property or violates it — and estimates
//! the unknown satisfaction probability `p` by the empirical mean `p̂`.
//! The Hoeffding inequality bounds the two-sided estimation error:
//!
//! ```text
//! Pr(|p̂ − p| ≥ ε) ≤ 2·exp(−2·n·ε²)
//! ```
//!
//! Solving `2·exp(−2nε²) ≤ δ` either way gives the two planning functions
//! of this module: [`required_episodes`] (the Okamoto bound — how many
//! episodes buy a target half-width `ε` at risk `δ`) and [`half_width`]
//! (the `ε` a given episode count actually bought). These are the bounds
//! used by Ngo & Legay's SystemC statistical model checker (PSCV), which
//! this subsystem reproduces on top of the loose-ordering monitors.

/// Episodes required so that `Pr(|p̂ − p| ≥ epsilon) ≤ delta` — the
/// Okamoto/Chernoff–Hoeffding sample-size bound `⌈ln(2/δ) / (2ε²)⌉`.
///
/// # Panics
///
/// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
///
/// # Example
///
/// ```
/// use lomon_smc::estimate::required_episodes;
/// // ±0.05 at 95% confidence needs 738 episodes.
/// assert_eq!(required_episodes(0.05, 0.05), 738);
/// ```
pub fn required_episodes(epsilon: f64, delta: f64) -> u64 {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon={epsilon} out of (0,1)"
    );
    assert!(delta > 0.0 && delta < 1.0, "delta={delta} out of (0,1)");
    ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as u64
}

/// The half-width `ε = √(ln(2/δ) / 2n)` that `trials` episodes bought at
/// risk `delta`: the interval `p̂ ± ε` contains the true probability with
/// probability at least `1 − δ`.
///
/// Returns `1.0` (the vacuous bound) for zero trials.
///
/// # Panics
///
/// Panics unless `0 < delta < 1`.
pub fn half_width(trials: u64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta={delta} out of (0,1)");
    if trials == 0 {
        return 1.0;
    }
    ((2.0 / delta).ln() / (2.0 * trials as f64)).sqrt().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn okamoto_bound_matches_textbook_values() {
        // ln(2/0.05)/(2·0.05²) = 737.78 → 738; tighter ε is quadratic.
        assert_eq!(required_episodes(0.05, 0.05), 738);
        assert_eq!(required_episodes(0.01, 0.05), 18_445);
        // Lower risk is only logarithmic.
        assert_eq!(required_episodes(0.05, 0.01), 1_060);
    }

    #[test]
    fn bounds_are_mutually_inverse() {
        for (epsilon, delta) in [(0.1, 0.05), (0.02, 0.01), (0.2, 0.3)] {
            let n = required_episodes(epsilon, delta);
            // n episodes buy at least the requested precision…
            assert!(half_width(n, delta) <= epsilon + 1e-12);
            // …and one episode fewer does not.
            assert!(half_width(n - 1, delta) > epsilon);
        }
    }

    #[test]
    fn half_width_shrinks_with_trials() {
        assert_eq!(half_width(0, 0.05), 1.0);
        let wide = half_width(10, 0.05);
        let narrow = half_width(1_000, 0.05);
        assert!(narrow < wide);
        assert!(narrow > 0.0);
        // Tiny samples clamp to the vacuous bound.
        assert_eq!(half_width(1, 0.05), 1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_vacuous_epsilon() {
        let _ = required_episodes(1.0, 0.05);
    }
}
