//! S4: the §8 future-work generator in the verification loop — generate
//! labelled stimuli from the Fig. 6 patterns, replay them through the Drct
//! monitors, and report agreement and coverage.
//!
//! Run with `cargo run -p lomon-bench --bin gen_check --release`.

use lomon_bench::fig6_rows;
use lomon_core::monitor::build_monitor;
use lomon_core::parse::parse_property;
use lomon_core::verdict::{Monitor as _, Verdict};
use lomon_gen::{generate, generate_until_covered, mutate, GeneratorConfig};
use lomon_trace::Vocabulary;

fn main() {
    println!("S4 — stimuli generation vs monitors, Fig. 6 patterns");
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>10}",
        "Configuration", "positives", "mutants", "violating", "coverage"
    );
    for row in fig6_rows() {
        let mut voc = Vocabulary::new();
        let property = parse_property(row.text, &mut voc).expect("parses");

        // The wide-range rows generate ~30k-event episodes and their
        // reference NFA has ~60k states: scale the effort there (coverage
        // of the exact boundary counts of a 59901-wide range is also not a
        // reachable target for uniform sampling — the partial figure is
        // informative as-is).
        let wide = row.text.contains("60000");
        let (positives_n, mutants_n, coverage_cap) = if wide {
            (5u64, 10u32, 5u32)
        } else {
            (50, 100, 300)
        };

        // Positives: generated traces, all must be accepted.
        let mut positives = 0;
        for seed in 0..positives_n {
            let trace = generate(&property, &GeneratorConfig::new(seed)).trace;
            let mut monitor = build_monitor(property.clone(), &voc).expect("wf");
            for &e in trace.iter() {
                monitor.observe(e);
            }
            assert_ne!(
                monitor.verdict(),
                Verdict::Violated,
                "row {}: generated trace rejected",
                row.id
            );
            positives += 1;
        }

        // Mutants: labelled by the oracle; monitors must agree.
        let base = generate(&property, &GeneratorConfig::new(999)).trace;
        let mutants = if wide {
            Vec::new() // the oracle NFA is too large for per-mutant replay
        } else {
            mutate(&property, &base, mutants_n, 7)
        };
        let mut violating = 0;
        for mutant in &mutants {
            let mut monitor = build_monitor(property.clone(), &voc).expect("wf");
            for &e in mutant.trace.iter() {
                monitor.observe(e);
            }
            let monitor_ok = monitor.verdict() != Verdict::Violated;
            assert_eq!(
                monitor_ok,
                !mutant.violates(),
                "row {}: monitor/oracle disagreement",
                row.id
            );
            if mutant.violates() {
                violating += 1;
            }
        }

        // Coverage-directed generation.
        let (_traces, coverage) =
            generate_until_covered(&property, &GeneratorConfig::new(5), 1.0, coverage_cap);

        println!(
            "{:<34} {:>10} {:>10} {:>10} {:>9.0}%",
            row.label,
            positives,
            mutants.len(),
            violating,
            coverage.overall() * 100.0
        );
    }
    println!();
    println!("All generated positives accepted; all mutant labels agreed with");
    println!("the monitors (assertions would have fired otherwise).");
}
