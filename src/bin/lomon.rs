//! `lomon` — command-line trace-replay and streaming monitoring.
//!
//! The practical entry point of the reproduction: check recorded traces
//! (e.g. dumped from a real SystemC model) against loose-ordering
//! properties, watch a *live* event stream from stdin, convert traces to
//! VCD for waveform viewers, or generate labelled stimuli from a property.
//!
//! ```text
//! lomon check <trace-file>... <property>...   replay trace file(s) against properties
//! lomon watch [--format trace|ndjson] <property>...
//!                                             monitor an event stream from stdin
//! lomon serve [options] <rulebook|property>...
//!                                             hardened monitoring daemon over TCP
//! lomon smc   [options] [property...]         statistical model-checking campaign
//! lomon lint  [options] <rulebook|property>...
//!                                             static analysis of a rulebook
//! lomon profile <rulebook|property>... <trace-file>
//!                                             rank the hottest fused groups
//! lomon vcd   <trace-file>                    print the trace as VCD
//! lomon gen   <property> [seed [episodes]]    print a generated satisfying trace
//! lomon demo                                  record + check a platform run
//! ```
//!
//! Both `check` and `watch` run on the `lomon-engine` subsystem: the
//! property set is compiled once (every parse/well-formedness error is
//! reported, not just the first), events are dispatched through the
//! inverted name→monitor index, and the report includes the dispatch
//! statistics. `check` accepts any number of trace files (the leading
//! arguments that name readable files) and replays them all through one
//! compiled engine, resetting a single session between files; the exit
//! code is non-zero if *any* file violates *any* property.
//!
//! `smc` runs a `lomon-smc` campaign: many seed-randomized episodes —
//! platform simulations (default) or `lomon-gen` stimuli over a trace
//! file — monitored in parallel, with Chernoff–Hoeffding estimates and
//! optional SPRT hypothesis tests per property.
//!
//! `lint` compiles a rulebook without running anything and reports the
//! whole-rulebook static analysis ([`lomon::core::analysis`]): duplicate,
//! vacuous, subsumed and conflicting properties, coverage gaps and dead
//! action-table entries, each under a stable `L0xx` code. The same
//! analysis runs implicitly on `check`/`watch`/`smc` rulebooks, which
//! print the warnings and accept `--deny-warnings` to refuse them.

use std::io::BufRead as _;
use std::process::ExitCode;
use std::sync::Arc;

use lomon::core::analysis::{prune_dead, AnalysisOptions, Diagnostic, Severity};
use lomon::core::parse::parse_property;
use lomon::core::verdict::{Monitor as _, Verdict};
use lomon::core::witness::Witness;
use lomon::engine::{
    error_diagnostics, profile_trace, Backend, DispatchMode, Engine, Session, SessionMetrics,
};
use lomon::gen::{generate, GeneratorConfig};
use lomon::obs::{MetricsServer, Registry, Stopwatch, Tracer};
use lomon::serve::{ServeConfig, Server, StartError};
use lomon::smc::{
    Campaign, CampaignConfig, CampaignMetrics, CampaignMode, CampaignProgress, EpisodeModel,
    GenModel, ScenarioModel, SprtConfig,
};
use lomon::tlm::scenario::{run_scenario, ScenarioConfig};
use lomon::trace::{
    decode_events_into, json_escape, parse_stream_line_bytes, read_trace_bytes_into,
    read_trace_bytes_observed, write_trace, write_vcd, IoMetrics, MappedFile, Name, NameSet,
    SimTime, StreamFormat, StreamLineRef, TimedEvent, Vocabulary,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() >= 3 => check(&args[1..]),
        Some("watch") if args.len() >= 2 => watch(&args[1..]),
        Some("serve") if args.len() >= 2 => serve(&args[1..]),
        Some("smc") => smc(&args[1..]),
        Some("lint") if args.len() >= 2 => lint(&args[1..]),
        Some("profile") if args.len() >= 3 => profile(&args[1..]),
        Some("vcd") if args.len() == 2 => vcd(&args[1]),
        Some("gen") if args.len() >= 2 && args.len() <= 4 => gen(&args[1], &args[2..]),
        Some("demo") if args.len() == 1 => demo(),
        Some(
            command @ ("check" | "watch" | "serve" | "lint" | "profile" | "vcd" | "gen" | "demo"),
        ) => {
            eprintln!("error: wrong arguments for `lomon {command}`");
            usage()
        }
        Some(unknown) => {
            eprintln!("error: unknown command `{unknown}`");
            usage()
        }
        None => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  lomon check [--backend fused|compiled|interp] [--format text|json]");
    eprintln!("              [--explain] [--metrics ADDR] [--stats-every N]");
    eprintln!("              <trace-file>... <property>...");
    eprintln!("  lomon watch [--format trace|ndjson] [--backend fused|compiled|interp]");
    eprintln!("              [--strict] [--explain] [--metrics ADDR] [--stats-every N]");
    eprintln!("              <property>...");
    eprintln!("  lomon serve [--listen ADDR] [--admin ADDR] [--metrics ADDR]");
    eprintln!("              [--backend fused|compiled|interp] [--deny-warnings]");
    eprintln!("              [--max-streams N] <rulebook-file|property>...");
    eprintln!("  lomon smc   [--episodes N] [--jobs J] [--seed S] [--confidence C]");
    eprintln!("              [--epsilon E] [--sprt P0 P1] [--fault-prob Q]");
    eprintln!("              [--backend fused|compiled|interp] [--format text|json]");
    eprintln!("              [--metrics ADDR] [--stats-every N] [--quiet]");
    eprintln!("              [--trace <file> [--mutation-prob Q]] [property...]");
    eprintln!("  lomon lint  [--format text|json] [--trace <file>] [--fix-prune]");
    eprintln!("              [--deny-warnings] <rulebook-file|property>...");
    eprintln!("  lomon profile [--format text|json] [--top K] [--trace-out FILE]");
    eprintln!("              <rulebook-file|property>... <trace-file>");
    eprintln!("  lomon vcd   <trace-file>");
    eprintln!("  lomon gen   <property> [seed [episodes]]");
    eprintln!("  lomon demo");
    eprintln!();
    eprintln!("--backend selects the monitor execution backend: the fused rulebook");
    eprintln!("program (default; structurally identical properties share one cell");
    eprintln!("arena), the per-property compiled flat tables, or the tree-walking");
    eprintln!("interpreter (the verdict-identical differential oracles).");
    eprintln!();
    eprintln!("--format json makes `check` and `smc` print one machine-readable");
    eprintln!("JSON report per trace file / campaign instead of the text report.");
    eprintln!();
    eprintln!("--explain arms a bounded flight recorder per monitor: violations are");
    eprintln!("reported with their witness chain — the contributing events, each");
    eprintln!("with the recognizer cell it advanced. Off by default (zero cost).");
    eprintln!();
    eprintln!("profile replays a recorded trace through the fused rulebook program");
    eprintln!("and ranks the unique recognizer groups by monitor steps and wall-");
    eprintln!("clock time; --trace-out writes a Chrome trace-event JSON file for");
    eprintln!("chrome://tracing or Perfetto.");
    eprintln!();
    eprintln!("--metrics ADDR serves live telemetry over HTTP while check/watch/smc");
    eprintln!("run: GET /metrics is Prometheus text, GET /metrics.json is NDJSON (use");
    eprintln!("port 0 for an ephemeral port; the bound address is announced on");
    eprintln!("stderr). --stats-every N prints a {{\"type\": \"stats\", ...}} heartbeat");
    eprintln!("every N events (watch) or episodes (smc). smc prints a progress");
    eprintln!("line per scheduling batch to stderr; --quiet suppresses it.");
    eprintln!();
    eprintln!("property example:");
    eprintln!("  'all{{set_imgAddr, set_glAddr, set_glSize}} << start once'");
    eprintln!();
    eprintln!("watch reads events from stdin: `10ns in set_imgAddr` lines (trace");
    eprintln!("format) or one JSON object per line (ndjson format), e.g.");
    eprintln!("  {{\"time\": \"10ns\", \"dir\": \"in\", \"name\": \"set_imgAddr\"}}");
    eprintln!("Malformed or time-travelling lines are skipped and counted (an error");
    eprintln!("record per line: stderr in trace format, an NDJSON {{\"type\": \"error\"}}");
    eprintln!("line in ndjson format); --strict makes them fatal with exit 2.");
    eprintln!();
    eprintln!("serve runs the hardened monitoring daemon: many concurrent NDJSON");
    eprintln!("streams over TCP against one compiled rulebook, with per-stream");
    eprintln!("fault isolation, overload shedding, rulebook hot-reload and drain");
    eprintln!("shutdown via the --admin endpoint (GET /health, POST /reload,");
    eprintln!("POST /shutdown). See the lomon-serve crate docs for the protocol.");
    eprintln!();
    eprintln!("smc runs a statistical model-checking campaign: platform episodes");
    eprintln!("with randomized fault injection (default; properties optional), or");
    eprintln!("--trace <file> episodes mutating a recorded trace (the first");
    eprintln!("property anchors the mutations). --sprt tests H0: p >= P0 against");
    eprintln!("H1: p <= P1 per property and exits 1 if any property accepts H1.");
    eprintln!();
    eprintln!("lint statically analyses a rulebook (files hold one property per");
    eprintln!("line, `#` comments allowed) and reports coded findings: duplicate,");
    eprintln!("vacuous, subsumed or conflicting properties, unobserved vocabulary");
    eprintln!("and — given a `--trace` corpus — unsubscribed events and dead");
    eprintln!("action-table rows (`--fix-prune` drops them and self-checks the");
    eprintln!("verdicts). Exit 0 clean, 1 warnings, 2 errors. check/watch/smc run");
    eprintln!("the same analysis and print its warnings; `--deny-warnings` makes");
    eprintln!("them (and lint) fail on any warning.");
    ExitCode::from(2)
}

/// Read one trace file through the wire-speed ingest path: the file is
/// memory-mapped ([`MappedFile`] — the byte lexer reads the page cache
/// directly, no heap copy proportional to file size) and decoded by
/// [`read_trace_bytes_observed`]. Grammar, monotonicity rules and error
/// text are identical to the old `read_to_string` + `read_trace` pair; a
/// file that is not UTF-8 still fails with the exact `io::Error` message
/// `read_to_string` produced.
fn load(path: &str, voc: &mut Vocabulary) -> Result<lomon::trace::Trace, String> {
    let file = map_trace_file(path)?;
    read_trace_bytes_observed(file.bytes(), voc, None).map_err(|e| e.to_string())
}

/// Map `path` and validate it as UTF-8 once up front, so binary files keep
/// the `cannot read …` diagnostic class instead of a per-line parse error.
fn map_trace_file(path: &str) -> Result<MappedFile, String> {
    let file = MappedFile::open(path.as_ref()).map_err(|e| format!("cannot read {path}: {e}"))?;
    if std::str::from_utf8(file.bytes()).is_err() {
        return Err(format!(
            "cannot read {path}: stream did not contain valid UTF-8"
        ));
    }
    Ok(file)
}

/// Compile the whole property set, reporting *every* error before giving
/// up — a long rulebook is fixed in one pass, not one error at a time.
/// Compilation also runs the whole-rulebook static analysis: warnings
/// (duplicate / vacuous / subsumed / conflicting properties) go to stderr,
/// and with `deny_warnings` any warning refuses the rulebook. Notes are
/// lint-only detail and stay silent here (`lomon lint` prints everything).
fn compile_all(
    properties: &[String],
    voc: &mut Vocabulary,
    deny_warnings: bool,
) -> Result<Engine, ExitCode> {
    let opts = AnalysisOptions::default();
    match Engine::compile_with_analysis(properties, voc, &opts) {
        Ok((engine, diagnostics)) => {
            let warnings = diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .count();
            for diagnostic in diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning)
            {
                eprintln!("{}", diagnostic.render_text());
            }
            if deny_warnings && warnings > 0 {
                eprintln!("error: rulebook has {warnings} warning(s) (--deny-warnings)");
                return Err(ExitCode::FAILURE);
            }
            Ok(engine)
        }
        Err(errors) => {
            for error in &errors {
                eprintln!("error in property:\n{}", error.display(voc));
            }
            Err(ExitCode::FAILURE)
        }
    }
}

/// Extract every occurrence of the valued `flag` (both the two-argument
/// and the `=` spelling) from `args`, leaving the remaining arguments in
/// place. Returns the last value given, or `None` when the flag is absent.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ExitCode> {
    let prefixed = format!("{flag}=");
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        let (consumed, v) = if args[i] == flag {
            match args.get(i + 1) {
                Some(v) => (2, v.clone()),
                None => {
                    eprintln!("error: `{flag}` requires a value");
                    return Err(usage());
                }
            }
        } else if let Some(v) = args[i].strip_prefix(&prefixed) {
            (1, v.to_owned())
        } else {
            i += 1;
            continue;
        };
        value = Some(v);
        args.drain(i..i + consumed);
    }
    Ok(value)
}

/// Extract every occurrence of the boolean `flag` from `args`, returning
/// whether it was present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Extract the `--backend fused|compiled|interp` flag from `args`.
/// Defaults to the fused rulebook backend.
fn take_backend_flag(args: &mut Vec<String>) -> Result<Backend, ExitCode> {
    match take_value_flag(args, "--backend")?.as_deref() {
        None | Some("fused") => Ok(Backend::Fused),
        Some("compiled") => Ok(Backend::Compiled),
        Some("interp") => Ok(Backend::Interp),
        Some(other) => {
            eprintln!(
                "error: unknown backend `{other}` (expected `fused`, `compiled` or `interp`)"
            );
            Err(usage())
        }
    }
}

/// Output format of `check` and `smc` reports.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReportFormat {
    Text,
    Json,
}

/// Extract the `--format text|json` flag from `args`. Defaults to the
/// human-readable text report.
fn take_report_format_flag(args: &mut Vec<String>) -> Result<ReportFormat, ExitCode> {
    match take_value_flag(args, "--format")?.as_deref() {
        None | Some("text") => Ok(ReportFormat::Text),
        Some("json") => Ok(ReportFormat::Json),
        Some(other) => {
            eprintln!("error: unknown format `{other}` (expected `text` or `json`)");
            Err(usage())
        }
    }
}

/// Flight-recorder capacity armed by `--explain`: enough for every
/// realistic violation chain, bounded so a pathological stream cannot
/// grow memory per monitor — and small enough (1 KiB of ring per
/// monitor) that an armed rulebook stays cache-resident.
const EXPLAIN_CAPACITY: usize = 64;

fn check(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let deny_warnings = take_bool_flag(&mut args, "--deny-warnings");
    let explain = take_bool_flag(&mut args, "--explain");
    let backend = match take_backend_flag(&mut args) {
        Ok(backend) => backend,
        Err(code) => return code,
    };
    let format = match take_report_format_flag(&mut args) {
        Ok(format) => format,
        Err(code) => return code,
    };
    let metrics_addr = match take_value_flag(&mut args, "--metrics") {
        Ok(addr) => addr,
        Err(code) => return code,
    };
    let stats_every = match take_stats_every(&mut args) {
        Ok(every) => every,
        Err(code) => return code,
    };
    let args = &args[..];
    // The leading arguments that name readable files are the traces; the
    // rest are properties. A leading argument that is *not* a file but
    // does not look like a property either is still an intended trace
    // path (a typo'd or missing file), so its diagnostic stays "cannot
    // read …" rather than a property parse error over a filename. Every
    // valid property contains `<` (`<<` or `<`-chains or `=>` … `within`
    // carries whitespace) or whitespace or `{`; file paths practically
    // never do.
    let looks_like_property =
        |a: &str| a.contains(char::is_whitespace) || a.contains(['<', '{', '=']);
    let split = args
        .iter()
        .position(|a| !std::path::Path::new(a).is_file() && looks_like_property(a))
        .unwrap_or(args.len())
        .max(1);
    let (paths, properties) = args.split_at(split);
    if properties.is_empty() {
        eprintln!("error: `lomon check` needs at least one property after the trace file(s)");
        return usage();
    }

    // Live telemetry, exactly as `watch`: the complete family set is
    // registered and the listener bound before anything runs — including
    // the trace decode, whose nanoseconds land in `lomon_ingest_decode_ns`.
    let mut telemetry = None;
    let mut server = None;
    if let Some(addr) = &metrics_addr {
        let registry = Arc::new(Registry::new());
        let session_metrics = SessionMetrics::register(&registry);
        let io_metrics = IoMetrics::register(&registry);
        let compile_ns = registry.histogram(
            "lomon_compile_ns",
            "Wall-clock nanoseconds spent compiling the rulebook",
        );
        match bind_metrics(addr, &registry) {
            Ok(bound) => server = Some(bound),
            Err(code) => return code,
        }
        telemetry = Some((session_metrics, io_metrics, compile_ns));
    }
    let io_metrics = telemetry.as_ref().map(|(_, io, _)| io.as_ref());

    // Wire-speed ingest, in two passes over memory-mapped files. First
    // every file is lexed once straight from the page cache to merge the
    // alphabets into one vocabulary (and surface every parse error before
    // anything runs); then the property set is compiled once — one engine
    // and one session serve all files. The replay pass below re-decodes
    // each mapping against the now-frozen vocabulary into one reused
    // pre-resolved event buffer, so peak memory is one file's events, not
    // the sum of all files'.
    let mut voc = Vocabulary::new();
    let mut files = Vec::with_capacity(paths.len());
    let mut scratch = lomon::trace::Trace::new();
    for path in paths {
        let outcome = map_trace_file(path).and_then(|file| {
            read_trace_bytes_into(file.bytes(), &mut voc, &mut scratch, io_metrics)
                .map_err(|e| e.to_string())?;
            Ok((file, scratch.len(), scratch.end_time()))
        });
        match outcome {
            Ok(entry) => files.push(entry),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    drop(scratch);
    let compile_span = telemetry
        .as_ref()
        .map(|(_, _, compile_ns)| Stopwatch::start(Arc::clone(compile_ns)));
    let engine = match compile_all(properties, &mut voc, deny_warnings) {
        Ok(engine) => engine,
        Err(code) => return code,
    };
    drop(compile_span);
    let mut session = engine.session_with_backend(DispatchMode::Indexed, backend);
    if explain {
        session.enable_explain(EXPLAIN_CAPACITY);
    }
    if let Some((session_metrics, _, _)) = &telemetry {
        session.attach_metrics(Arc::clone(session_metrics));
    }
    let mut reports = Vec::with_capacity(paths.len());
    let mut finalized = Vec::new();
    let mut events: Vec<TimedEvent> = Vec::new();
    for (file, _, end_time) in &files {
        // The intern pass above fed the whole alphabet into `voc`, so the
        // frozen-vocabulary decode cannot fail here; a failure would mean
        // the mapped file changed under us between the passes. This pass
        // is deliberately unobserved — the intern pass already counted
        // every line and byte once, as the single-read path did.
        if let Err(e) = decode_events_into(file.bytes(), &voc, &mut events) {
            eprintln!("error: trace changed while being read: {e}");
            return ExitCode::FAILURE;
        }
        session.reset();
        match stats_every {
            None => session.ingest_batch(&events),
            Some(every) => {
                // Heartbeats need batch boundaries: ingest in
                // `--stats-every`-sized chunks and emit one stats line
                // (stderr, like the text-mode watch heartbeat) per chunk.
                let mut violations = 0u64;
                for chunk in events.chunks(every as usize) {
                    session.ingest_batch(chunk);
                    session.drain_newly_final_into(&mut finalized);
                    violations += finalized
                        .iter()
                        .filter(|&&id| session.verdict(id as usize) == Verdict::Violated)
                        .count() as u64;
                    emit_check_heartbeat(&session, backend, violations);
                }
            }
        }
        reports.push(session.finish(*end_time));
    }
    // Stop serving scrapes before the reports, as watch/smc do: a scrape
    // racing the shutdown gets a clean 503, never a torn snapshot.
    if let Some(server) = &server {
        server.drain();
    }
    let mut all_ok = true;
    for ((path, (_, len, end_time)), report) in paths.iter().zip(&files).zip(&reports) {
        match format {
            ReportFormat::Text => {
                println!("{path}: {len} events, end at {end_time}");
                print!("{}", report.render(&voc));
            }
            // One JSON object per trace file, NDJSON-style, so a script
            // over many files maps lines to files.
            ReportFormat::Json => println!(
                "{{\"file\": \"{}\", {}",
                json_escape(path),
                &report.render_json(&voc)[1..],
            ),
        }
        all_ok &= report.is_ok();
    }
    if format == ReportFormat::Text && paths.len() > 1 {
        println!(
            "{} files checked: {}",
            paths.len(),
            if all_ok { "all ok" } else { "violations found" }
        );
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn watch(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let deny_warnings = take_bool_flag(&mut args, "--deny-warnings");
    let strict = take_bool_flag(&mut args, "--strict");
    let explain = take_bool_flag(&mut args, "--explain");
    let backend = match take_backend_flag(&mut args) {
        Ok(backend) => backend,
        Err(code) => return code,
    };
    let metrics_addr = match take_value_flag(&mut args, "--metrics") {
        Ok(addr) => addr,
        Err(code) => return code,
    };
    let stats_every = match take_stats_every(&mut args) {
        Ok(every) => every,
        Err(code) => return code,
    };
    let mut format = StreamFormat::Trace;
    let mut properties: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if arg == "--format" {
            match iter.next() {
                Some(v) => Some(v.as_str()),
                None => {
                    eprintln!("error: `--format` requires a value");
                    return usage();
                }
            }
        } else if let Some(v) = arg.strip_prefix("--format=") {
            Some(v)
        } else if arg.starts_with("--") {
            eprintln!("error: unknown flag `{arg}`");
            return usage();
        } else {
            properties.push(arg.clone());
            None
        };
        match value {
            None => {}
            Some("trace") => format = StreamFormat::Trace,
            Some("ndjson") => format = StreamFormat::Ndjson,
            Some(other) => {
                eprintln!("error: unknown format `{other}` (expected `trace` or `ndjson`)");
                return usage();
            }
        }
    }
    if properties.is_empty() {
        eprintln!("error: `lomon watch` needs at least one property");
        return usage();
    }

    // Live telemetry: every family is registered (and the listener bound)
    // before anything runs, so a scrape racing startup sees the complete
    // family set at zero rather than a partial registry.
    let mut telemetry = None;
    let mut server = None;
    if let Some(addr) = &metrics_addr {
        let registry = Arc::new(Registry::new());
        let session_metrics = SessionMetrics::register(&registry);
        let io_metrics = IoMetrics::register(&registry);
        let compile_ns = registry.histogram(
            "lomon_compile_ns",
            "Wall-clock nanoseconds spent compiling the rulebook",
        );
        match bind_metrics(addr, &registry) {
            Ok(bound) => server = Some(bound),
            Err(code) => return code,
        }
        telemetry = Some((session_metrics, io_metrics, compile_ns));
    }

    let mut voc = Vocabulary::new();
    let compile_span = telemetry
        .as_ref()
        .map(|(_, _, compile_ns)| Stopwatch::start(Arc::clone(compile_ns)));
    let engine = match compile_all(&properties, &mut voc, deny_warnings) {
        Ok(engine) => engine,
        Err(code) => return code,
    };
    drop(compile_span);
    let mut session = engine.session_with_backend(DispatchMode::Indexed, backend);
    if explain {
        session.enable_explain(EXPLAIN_CAPACITY);
    }
    if let Some((session_metrics, _, _)) = &telemetry {
        session.attach_metrics(Arc::clone(session_metrics));
    }

    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut last_time = SimTime::ZERO;
    let mut finalized = Vec::new();
    let mut violations = 0u64;
    let mut parse_errors = 0u64;
    let mut next_heartbeat = stats_every.unwrap_or(u64::MAX);
    // The wire-speed stdin loop: one reused byte buffer instead of a fresh
    // `String` per line, the zero-copy byte-slice parser instead of the
    // owned one (the event name borrows from the buffer until `intern`),
    // and — armed only under `--metrics` — one decode-nanoseconds sample
    // per line.
    let mut raw: Vec<u8> = Vec::new();
    let mut line_no = 0usize;
    loop {
        raw.clear();
        match input.read_until(b'\n', &mut raw) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
        line_no += 1;
        // Shed the terminator exactly as `BufRead::lines` does: the `\n`,
        // and a `\r` only as part of a CRLF pair.
        if raw.last() == Some(&b'\n') {
            raw.pop();
            if raw.last() == Some(&b'\r') {
                raw.pop();
            }
        }
        if let Some((_, io_metrics, _)) = &telemetry {
            io_metrics.lines.inc();
            io_metrics.bytes.add(raw.len() as u64 + 1); // + the newline
        }
        // `BufRead::lines` made a non-UTF-8 line fatal (its per-line
        // validation failed the read itself); the byte loop preserves that
        // contract with the identical message.
        if !raw.is_ascii() && std::str::from_utf8(&raw).is_err() {
            eprintln!("error: cannot read stdin: stream did not contain valid UTF-8");
            return ExitCode::FAILURE;
        }
        // A bad line costs only itself: it is counted, reported as an
        // error record, and skipped — the stream keeps flowing, exactly
        // like a faulted `lomon serve` stream costs only its own
        // connection. `--strict` restores the fail-fast contract for
        // pipelines that prefer to die over monitoring a desynced stream.
        let decode_span = telemetry.as_ref().map(|_| std::time::Instant::now());
        let parsed = parse_stream_line_bytes(format, &raw);
        if let (Some(t0), Some((_, io_metrics, _))) = (decode_span, &telemetry) {
            io_metrics
                .decode_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let reason = match parsed {
            Ok(None) => continue, // blank line or comment
            Ok(Some(StreamLineRef::Event {
                time,
                direction,
                name,
            })) if time >= last_time => {
                last_time = time;
                let name = voc.intern(&name, direction);
                session.ingest(TimedEvent::new(name, time));
                violations += report_finalized(&mut session, &voc, format, &mut finalized);
                None
            }
            Ok(Some(StreamLineRef::End(time))) if time >= last_time => {
                // Like `read_trace`: `end` advances the observation clock
                // but the stream may continue (later events move the end
                // further, exactly as `Trace::push` after `set_end_time`).
                last_time = time;
                session.advance_time(time);
                violations += report_finalized(&mut session, &voc, format, &mut finalized);
                None
            }
            Ok(Some(StreamLineRef::Event { time, .. })) => Some(format!(
                "timestamp {time} precedes previous event at {last_time}"
            )),
            Ok(Some(StreamLineRef::End(time))) => Some(format!(
                "end time {time} precedes last event at {last_time}"
            )),
            Err(message) => Some(message),
        };
        if let Some(reason) = reason {
            if let Some((_, io_metrics, _)) = &telemetry {
                io_metrics.parse_errors.inc();
            }
            if strict {
                eprintln!("error: stream line {line_no}: {reason}");
                return ExitCode::from(2);
            }
            parse_errors += 1;
            match format {
                StreamFormat::Trace => {
                    eprintln!("warning: stream line {line_no}: {reason} (line skipped)");
                }
                StreamFormat::Ndjson => println!(
                    "{{\"type\": \"error\", \"line\": {line_no}, \"reason\": \"{}\"}}",
                    json_escape(&reason),
                ),
            }
            continue;
        }
        if let Some(every) = stats_every {
            let events = session.stats().events;
            if events >= next_heartbeat {
                emit_watch_heartbeat(&session, backend, violations, format);
                next_heartbeat = (events / every + 1) * every;
            }
        }
        if session.is_settled() {
            break; // every verdict is final; the rest of the stream is moot
        }
    }

    let report = session.finish(last_time);
    report_finalized(&mut session, &voc, format, &mut finalized);
    // Stop serving scrapes before the final report: a scrape racing the
    // shutdown gets a clean 503, never a half-written snapshot.
    if let Some(server) = &server {
        server.drain();
    }
    let violations = report.violations().count() as u64;
    match format {
        StreamFormat::Trace => {
            if parse_errors > 0 {
                eprintln!("{parse_errors} malformed line(s) skipped");
            }
            eprint!("{}", report.render(&voc));
        }
        StreamFormat::Ndjson => {
            // Verdicts that never finalized were not streamed above; a
            // machine consumer still needs one line per property.
            for p in report.properties.iter().filter(|p| !p.verdict.is_final()) {
                println!(
                    "{{\"property\": \"{}\", \"index\": {}, \"verdict\": \"{}\", \
                     \"final\": false}}",
                    json_escape(&p.property),
                    p.index,
                    p.verdict,
                );
            }
            // The top-level fields predate the unified schema and stay as
            // aliases; `stats` is the canonical object every CLI surface
            // shares (see `DispatchStats::render_json_object`).
            println!(
                "{{\"summary\": true, \"backend\": \"{}\", \"events\": {}, \
                 \"monitor_steps\": {}, \"steps_skipped\": {}, \
                 \"unique_cells\": {}, \"shared_hits\": {}, \"violations\": {}, \
                 \"parse_errors\": {parse_errors}, \"stats\": {}}}",
                backend.label(),
                report.stats.events,
                report.stats.monitor_steps,
                report.stats.steps_skipped,
                report.stats.unique_cells,
                report.stats.shared_hits,
                violations,
                report.stats.render_json_object(backend.label(), violations),
            );
        }
    }
    if report.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Print the verdicts that finalized since the last call, as they happen,
/// returning how many of them were violations (the running count feeds
/// the `--stats-every` heartbeats). `finalized` is a caller-owned scratch
/// buffer: this runs once per stream event, so the ids are drained into
/// reused capacity instead of a fresh allocation per call
/// ([`Session::drain_newly_final_into`]).
fn report_finalized(
    session: &mut Session<'_>,
    voc: &Vocabulary,
    format: StreamFormat,
    finalized: &mut Vec<u32>,
) -> u64 {
    session.drain_newly_final_into(finalized);
    let mut violated = 0u64;
    for &id in finalized.iter() {
        let id = id as usize;
        let verdict = session.verdict(id);
        violated += u64::from(verdict == Verdict::Violated);
        let text = session.engine().property_display(id);
        // Present only in explain mode and only on violations: streamed
        // witnesses match the final report's.
        let witness = if verdict == Verdict::Violated {
            session
                .witness(id)
                .filter(|w| !w.steps.is_empty() || w.dropped > 0)
        } else {
            None
        };
        match format {
            StreamFormat::Trace => {
                println!("[{verdict}] {text}");
                if let Some(violation) = session.violation(id) {
                    println!("    {}", violation.display(voc));
                }
                if let Some(witness) = &witness {
                    print!("{}", witness_text(witness, voc, "    "));
                }
            }
            StreamFormat::Ndjson => {
                let diagnostic = session
                    .violation(id)
                    .map(|v| format!(", \"diagnostic\": \"{}\"", json_escape(&v.display(voc))))
                    .unwrap_or_default();
                let witness = witness
                    .as_ref()
                    .map(|w| witness_json_fields(w, voc))
                    .unwrap_or_default();
                println!(
                    "{{\"property\": \"{}\", \"index\": {id}, \"verdict\": \"{}\"\
                     {diagnostic}{witness}}}",
                    json_escape(text),
                    verdict,
                );
            }
        }
    }
    violated
}

/// Emit one `{"type": "stats", …}` heartbeat over the canonical stats
/// schema. In NDJSON mode it interleaves with the verdict stream on
/// stdout; trace mode keeps stdout human-readable and uses stderr. The
/// payload is a pure function of the events ingested so far, so two runs
/// over the same stream heartbeat identically.
fn emit_watch_heartbeat(
    session: &Session<'_>,
    backend: Backend,
    violations: u64,
    format: StreamFormat,
) {
    // Mirror `Session::finish`: the mid-stream snapshot carries the
    // rulebook size and how many properties already retired.
    let mut stats = *session.stats();
    stats.properties = session.engine().len() as u64;
    stats.retired = (session.engine().len() - session.active_len()) as u64;
    let line = format!(
        "{{\"type\": \"stats\", {}",
        &stats.render_json_object(backend.label(), violations)[1..]
    );
    match format {
        StreamFormat::Trace => eprintln!("{line}"),
        StreamFormat::Ndjson => println!("{line}"),
    }
}

/// One `{"type": "stats", …}` heartbeat for `check --stats-every`, always
/// on stderr so stdout stays the per-file report stream.
fn emit_check_heartbeat(session: &Session<'_>, backend: Backend, violations: u64) {
    let mut stats = *session.stats();
    stats.properties = session.engine().len() as u64;
    stats.retired = (session.engine().len() - session.active_len()) as u64;
    eprintln!(
        "{{\"type\": \"stats\", {}",
        &stats.render_json_object(backend.label(), violations)[1..]
    );
}

/// Human rendering of a witness chain, one step per line under `indent`.
fn witness_text(witness: &Witness, voc: &Vocabulary, indent: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{indent}because ({} contributing steps):",
        witness.steps.len()
    );
    if witness.dropped > 0 {
        let _ = writeln!(
            out,
            "{indent}  ... {} earlier steps dropped by the flight recorder",
            witness.dropped
        );
    }
    for s in &witness.steps {
        let (from, to) = s.transition();
        let _ = writeln!(
            out,
            "{indent}  `{}` at {} -- cell {}: {} -> {}",
            voc.resolve(s.event),
            s.time,
            s.cell,
            from,
            to,
        );
    }
    out
}

/// The witness fields of a streamed NDJSON verdict object (leading comma
/// included), matching the `check --format json` report schema.
fn witness_json_fields(witness: &Witness, voc: &Vocabulary) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(", \"witness\": [");
    for (j, s) in witness.steps.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        let (from, to) = s.transition();
        let _ = write!(
            out,
            "{{\"time_ps\": {}, \"event\": \"{}\", \"cell\": {}, \
             \"from\": \"{}\", \"to\": \"{}\"}}",
            s.time.as_ps(),
            json_escape(voc.resolve(s.event)),
            s.cell,
            from,
            to,
        );
    }
    out.push(']');
    if witness.dropped > 0 {
        let _ = write!(out, ", \"witness_dropped\": {}", witness.dropped);
    }
    out
}

/// Parse `text` as a `T`, or print an error naming `flag` and exit-code 2.
fn parse_flag_value<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, ExitCode> {
    text.parse().map_err(|_| {
        eprintln!("error: `{flag}` value `{text}` is not valid");
        usage()
    })
}

/// Extract `--stats-every <N>` — the heartbeat period in events (`watch`)
/// or episodes (`smc`) — rejecting zero.
fn take_stats_every(args: &mut Vec<String>) -> Result<Option<u64>, ExitCode> {
    match take_value_flag(args, "--stats-every")? {
        None => Ok(None),
        Some(raw) => match parse_flag_value::<u64>("--stats-every", &raw)? {
            0 => {
                eprintln!("error: `--stats-every` must be positive");
                Err(usage())
            }
            every => Ok(Some(every)),
        },
    }
}

/// Bind the `--metrics` HTTP listener and announce the resolved address on
/// stderr (with `:0` the kernel picks the port, and the announcement is
/// how callers learn it). A bind failure — typically the port is already
/// taken — is a usage-class error: exit code 2, nothing has run yet.
fn bind_metrics(addr: &str, registry: &Arc<Registry>) -> Result<MetricsServer, ExitCode> {
    match MetricsServer::bind(addr, Arc::clone(registry)) {
        Ok(server) => {
            eprintln!("metrics: serving http://{}/metrics", server.local_addr());
            Ok(server)
        }
        Err(e) => {
            eprintln!("error: cannot bind metrics listener on {addr}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

/// Pre-flight the rulebook analysis for `smc`, whose campaign compiles the
/// properties itself: print the warnings, honouring `--deny-warnings`.
/// Compile *errors* are left for the campaign to report with full context.
fn report_rulebook_warnings(properties: &[String], deny_warnings: bool) -> Result<(), ExitCode> {
    if properties.is_empty() {
        return Ok(());
    }
    let mut voc = Vocabulary::new();
    let opts = AnalysisOptions::default();
    if let Ok((_, diagnostics)) = Engine::compile_with_analysis(properties, &mut voc, &opts) {
        let warnings = diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        for diagnostic in diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
        {
            eprintln!("{}", diagnostic.render_text());
        }
        if deny_warnings && warnings > 0 {
            eprintln!("error: rulebook has {warnings} warning(s) (--deny-warnings)");
            return Err(ExitCode::FAILURE);
        }
    }
    Ok(())
}

/// `lomon serve`: run the hardened monitoring daemon until a drain
/// shutdown is requested on the admin endpoint.
fn serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let deny_warnings = take_bool_flag(&mut args, "--deny-warnings");
    let backend = match take_backend_flag(&mut args) {
        Ok(backend) => backend,
        Err(code) => return code,
    };
    let mut config = ServeConfig {
        backend,
        deny_warnings,
        listen: "127.0.0.1:7450".to_owned(),
        admin: "127.0.0.1:7451".to_owned(),
        ..ServeConfig::default()
    };
    match take_value_flag(&mut args, "--listen") {
        Ok(Some(addr)) => config.listen = addr,
        Ok(None) => {}
        Err(code) => return code,
    }
    match take_value_flag(&mut args, "--admin") {
        Ok(Some(addr)) => config.admin = addr,
        Ok(None) => {}
        Err(code) => return code,
    }
    match take_value_flag(&mut args, "--metrics") {
        Ok(addr) => config.metrics = addr,
        Err(code) => return code,
    }
    match take_value_flag(&mut args, "--max-streams") {
        Ok(None) => {}
        Ok(Some(raw)) => match parse_flag_value::<usize>("--max-streams", &raw) {
            Ok(0) => {
                eprintln!("error: `--max-streams` must be positive");
                return usage();
            }
            Ok(n) => config.max_streams = n,
            Err(code) => return code,
        },
        Err(code) => return code,
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("error: unknown flag `{flag}`");
        return usage();
    }

    // The rulebook, lint-style: file arguments contribute one property per
    // non-comment line, the rest are inline property texts.
    let mut rulebook = String::new();
    for arg in &args {
        if std::path::Path::new(arg).is_file() {
            match std::fs::read_to_string(arg) {
                Ok(text) => rulebook.push_str(&text),
                Err(e) => {
                    eprintln!("error: cannot read {arg}: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            rulebook.push_str(arg);
        }
        rulebook.push('\n');
    }

    let mut server = match Server::start(config, &rulebook) {
        Ok(server) => server,
        Err(StartError::Compile(diagnostics)) => {
            for diagnostic in &diagnostics {
                eprintln!("{}", diagnostic.render_text());
            }
            eprintln!("error: rulebook rejected; nothing is serving");
            return ExitCode::FAILURE;
        }
        Err(StartError::Io(e)) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::from(2);
        }
    };
    let properties = server.properties();
    eprintln!(
        "serving {} propert{} on {} (admin {})",
        properties,
        if properties == 1 { "y" } else { "ies" },
        server.local_addr(),
        server.admin_addr(),
    );
    if let Some(addr) = server.metrics_addr() {
        eprintln!("metrics on http://{addr}/metrics");
    }
    server.wait();
    ExitCode::SUCCESS
}

fn smc(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let deny_warnings = take_bool_flag(&mut args, "--deny-warnings");
    let backend = match take_backend_flag(&mut args) {
        Ok(backend) => backend,
        Err(code) => return code,
    };
    let format = match take_report_format_flag(&mut args) {
        Ok(format) => format,
        Err(code) => return code,
    };
    let quiet = take_bool_flag(&mut args, "--quiet");
    let metrics_addr = match take_value_flag(&mut args, "--metrics") {
        Ok(addr) => addr,
        Err(code) => return code,
    };
    let stats_every = match take_stats_every(&mut args) {
        Ok(every) => every,
        Err(code) => return code,
    };
    let telemetry = SmcTelemetry {
        metrics_addr,
        stats_every,
        quiet,
    };
    let args = &args[..];
    let mut episodes: Option<u64> = None;
    let mut jobs = 0usize;
    let mut seed = 1u64;
    let mut confidence = 0.95f64;
    // Mode-dependent flags stay `None` unless the user passed them, so a
    // flag that the selected mode would silently ignore is an error, not a
    // silently different campaign.
    let mut epsilon: Option<f64> = None;
    let mut sprt: Option<(f64, f64)> = None;
    let mut fault_prob: Option<f64> = None;
    let mut trace_path: Option<String> = None;
    let mut mutation_prob: Option<f64> = None;
    let mut properties: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| match iter.next() {
            Some(v) => Ok(v.as_str()),
            None => {
                eprintln!("error: `{flag}` requires a value");
                Err(usage())
            }
        };
        macro_rules! flag_value {
            ($flag:expr) => {
                match value($flag).and_then(|raw| parse_flag_value($flag, raw)) {
                    Ok(parsed) => parsed,
                    Err(code) => return code,
                }
            };
        }
        match arg.as_str() {
            "--episodes" => episodes = Some(flag_value!("--episodes")),
            "--jobs" => jobs = flag_value!("--jobs"),
            "--seed" => seed = flag_value!("--seed"),
            "--confidence" => confidence = flag_value!("--confidence"),
            "--epsilon" => epsilon = Some(flag_value!("--epsilon")),
            "--fault-prob" => fault_prob = Some(flag_value!("--fault-prob")),
            "--mutation-prob" => mutation_prob = Some(flag_value!("--mutation-prob")),
            "--trace" => {
                let raw = match value("--trace") {
                    Ok(raw) => raw,
                    Err(code) => return code,
                };
                trace_path = Some(raw.to_owned());
            }
            "--sprt" => sprt = Some((flag_value!("--sprt"), flag_value!("--sprt"))),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag `{flag}`");
                return usage();
            }
            property => properties.push(property.to_owned()),
        }
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        eprintln!("error: `--confidence` must lie strictly between 0 and 1");
        return usage();
    }
    if epsilon.is_some_and(|e| !(e > 0.0 && e < 1.0)) {
        eprintln!("error: `--epsilon` must lie strictly between 0 and 1");
        return usage();
    }
    for (flag, p) in [
        ("--fault-prob", fault_prob),
        ("--mutation-prob", mutation_prob),
    ] {
        if p.is_some_and(|p| !(0.0..=1.0).contains(&p)) {
            eprintln!("error: `{flag}` must lie in [0, 1]");
            return usage();
        }
    }
    // Reject flag combinations the selected mode would ignore.
    if epsilon.is_some() && episodes.is_some() {
        eprintln!("error: `--epsilon` sizes the campaign; it conflicts with `--episodes`");
        return usage();
    }
    if epsilon.is_some() && sprt.is_some() {
        eprintln!("error: `--epsilon` only applies to estimation campaigns, not `--sprt`");
        return usage();
    }
    if trace_path.is_some() && fault_prob.is_some() {
        eprintln!("error: `--fault-prob` applies to platform campaigns, not `--trace`");
        return usage();
    }
    if trace_path.is_none() && mutation_prob.is_some() {
        eprintln!("error: `--mutation-prob` requires `--trace`");
        return usage();
    }

    if let Err(code) = report_rulebook_warnings(&properties, deny_warnings) {
        return code;
    }

    // Assemble the mode: SPRT with early stopping, or fixed-size
    // estimation sized by the Okamoto bound when `--episodes` is absent.
    let mode = match sprt {
        Some((p0, p1)) => match SprtConfig::new(p0, p1) {
            Ok(config) => CampaignMode::Sprt {
                config,
                max_episodes: episodes.unwrap_or(100_000),
            },
            Err(e) => {
                eprintln!("error: invalid `--sprt`: {e}");
                return usage();
            }
        },
        None => CampaignMode::Estimate {
            episodes: episodes.unwrap_or_else(|| {
                lomon::smc::estimate::required_episodes(epsilon.unwrap_or(0.05), 1.0 - confidence)
            }),
        },
    };
    let config = CampaignConfig {
        seed,
        jobs,
        confidence,
        mode,
        backend,
    };

    // Assemble the model and run. The two arms carry different concrete
    // model types, so the campaign runs inside a small generic helper.
    match trace_path {
        None => {
            let fault_prob = fault_prob.unwrap_or(0.2);
            let mut model = ScenarioModel::new(ScenarioConfig::nominal(seed))
                .with_fault_probability(fault_prob);
            if !properties.is_empty() {
                model = model.with_properties(properties);
            }
            if format == ReportFormat::Text {
                println!(
                    "smc: platform campaign, fault probability {fault_prob}, seed {seed}, jobs {}",
                    lomon::smc::effective_jobs(jobs)
                );
            }
            run_smc(&model, &config, format, &telemetry)
        }
        Some(path) => {
            if properties.is_empty() {
                eprintln!("error: `lomon smc --trace` needs at least one property");
                return usage();
            }
            let mut voc = Vocabulary::new();
            let base = match load(&path, &mut voc) {
                Ok(trace) => trace,
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
            };
            let model = match GenModel::from_trace(properties, base, voc) {
                Ok(model) => model,
                Err(message) => {
                    eprintln!("error in property:\n{message}");
                    return ExitCode::FAILURE;
                }
            };
            let mutation_prob = mutation_prob.unwrap_or(0.5);
            let model = model.with_mutation_probability(mutation_prob);
            if format == ReportFormat::Text {
                println!(
                    "smc: trace campaign over {path}, mutation probability {mutation_prob}, \
                     seed {seed}, jobs {}",
                    lomon::smc::effective_jobs(jobs)
                );
            }
            run_smc(&model, &config, format, &telemetry)
        }
    }
}

/// Observability options of `lomon smc`, parsed up front and threaded to
/// the generic campaign runner.
struct SmcTelemetry {
    /// `--metrics`: serve live Prometheus/NDJSON telemetry on this address.
    metrics_addr: Option<String>,
    /// `--stats-every`: heartbeat period in episodes.
    stats_every: Option<u64>,
    /// `--quiet`: suppress the per-batch progress line.
    quiet: bool,
}

/// One stderr progress line per scheduling batch: episodes done, the
/// current per-property estimates with the shared Chernoff–Hoeffding
/// half-width, and the SPRT state when testing. Batch boundaries are
/// jobs-independent, so the sequence is identical for every `--jobs`.
fn render_smc_progress(progress: &CampaignProgress<'_>) -> String {
    use std::fmt::Write as _;
    let mut line = format!("smc: {}/{} episodes", progress.episodes, progress.planned);
    if progress.episodes > 0 {
        for (id, &successes) in progress.successes.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let mean = successes as f64 / progress.episodes as f64;
            let sep = if id == 0 { ", est" } else { "," };
            let _ = write!(line, "{sep} P{id}={mean:.4}");
        }
        let _ = write!(line, " \u{b1}{:.4}", progress.half_width);
    }
    if let Some(undecided) = progress.sprt_undecided {
        let _ = write!(line, ", sprt: {undecided} undecided");
    }
    line
}

/// One `{"type": "stats", …}` heartbeat for `smc --stats-every`, emitted
/// on stderr so stdout stays a pipeable report. Success counts are exact
/// integers at a jobs-independent batch boundary, so for a fixed seed the
/// heartbeat sequence is identical for every worker count.
fn render_smc_heartbeat(progress: &CampaignProgress<'_>) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "{{\"type\": \"stats\", \"episodes\": {}, \"planned\": {}, \"successes\": [",
        progress.episodes, progress.planned,
    );
    for (id, &successes) in progress.successes.iter().enumerate() {
        let _ = write!(line, "{}{successes}", if id == 0 { "" } else { ", " });
    }
    let _ = write!(line, "], \"half_width\": {}", progress.half_width);
    match progress.sprt_undecided {
        Some(undecided) => {
            let _ = write!(line, ", \"sprt_undecided\": {undecided}}}");
        }
        None => line.push_str(", \"sprt_undecided\": null}"),
    }
    line
}

/// Compile, run and render one campaign; the exit code is 1 when an SPRT
/// accepted `H1` (the satisfaction probability is below the threshold).
/// The JSON format prints only the report object — no preamble and no
/// wall clock — so stdout is deterministic across `--jobs` and pipeable.
/// Telemetry (`--metrics`, `--stats-every`, progress lines) rides the
/// jobs-independent batch boundaries and never perturbs the report.
fn run_smc<M: EpisodeModel>(
    model: &M,
    config: &CampaignConfig,
    format: ReportFormat,
    telemetry: &SmcTelemetry,
) -> ExitCode {
    // Register the families and bind the listener before compiling, so a
    // scrape racing campaign startup sees a complete (all-zero) registry
    // and a dead port fails fast with exit 2.
    let mut server = None;
    let mut observed = None;
    if let Some(addr) = &telemetry.metrics_addr {
        let registry = Arc::new(Registry::new());
        let compile_ns = registry.histogram(
            "lomon_compile_ns",
            "Wall-clock nanoseconds spent compiling the rulebook",
        );
        match bind_metrics(addr, &registry) {
            Ok(bound) => server = Some(bound),
            Err(code) => return code,
        }
        observed = Some((registry, compile_ns));
    }
    let compile_span = observed
        .as_ref()
        .map(|(_, compile_ns)| Stopwatch::start(Arc::clone(compile_ns)));
    let mut campaign = match Campaign::new(model, *config) {
        Ok(campaign) => campaign,
        Err(lomon::smc::CampaignError::Compile(errors)) => {
            let voc = model.vocabulary();
            for error in &errors {
                eprintln!("error in property:\n{}", error.display(&voc));
            }
            return ExitCode::FAILURE;
        }
        Err(other) => {
            eprintln!("error: {other}");
            return ExitCode::FAILURE;
        }
    };
    drop(compile_span);
    if let Some((registry, _)) = &observed {
        campaign.attach_metrics(CampaignMetrics::register(registry, campaign.engine().len()));
    }

    let started = std::time::Instant::now();
    let quiet = telemetry.quiet;
    let stats_every = telemetry.stats_every;
    let mut next_heartbeat = stats_every.unwrap_or(u64::MAX);
    let report = campaign.run_observed(&mut |progress| {
        if !quiet {
            eprintln!("{}", render_smc_progress(&progress));
        }
        if let Some(every) = stats_every {
            if progress.episodes >= next_heartbeat {
                eprintln!("{}", render_smc_heartbeat(&progress));
                next_heartbeat = (progress.episodes / every + 1) * every;
            }
        }
    });
    let elapsed = started.elapsed();
    // Stop serving scrapes before the final report: a scrape racing
    // campaign completion gets a clean 503, never a torn snapshot.
    if let Some(server) = &server {
        server.drain();
    }
    match format {
        ReportFormat::Text => {
            print!("{}", report.render());
            println!("  wall clock: {:.2?}", elapsed);
        }
        ReportFormat::Json => println!("{}", report.render_json()),
    }
    if report.any_rejected() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `lomon lint` — compile a rulebook, run the whole-rulebook static
/// analysis, print the findings and exit 0 (clean or notes only), 1
/// (warnings) or 2 (errors, or warnings under `--deny-warnings`).
///
/// Arguments that name readable files are rulebook files (one property per
/// line, `#` comments and blank lines skipped); everything else is an
/// inline property. `--trace <file>` supplies an event corpus, enabling
/// the coverage (`L008`) and dead-table (`L009`) findings; `--fix-prune`
/// additionally prunes the dead action-table rows and, when a corpus is
/// given, self-checks that the pruned rulebook is verdict-identical on it.
fn lint(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let deny_warnings = take_bool_flag(&mut args, "--deny-warnings");
    let fix_prune = take_bool_flag(&mut args, "--fix-prune");
    let format = match take_report_format_flag(&mut args) {
        Ok(format) => format,
        Err(code) => return code,
    };
    let trace_path = match take_value_flag(&mut args, "--trace") {
        Ok(path) => path,
        Err(code) => return code,
    };
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("error: unknown flag `{flag}`");
        return usage();
    }

    // Collect the rulebook: file arguments contribute one property per
    // non-comment line, the rest are inline property texts.
    let mut properties: Vec<String> = Vec::new();
    for arg in &args {
        if std::path::Path::new(arg).is_file() {
            let text = match std::fs::read_to_string(arg) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: cannot read {arg}: {e}");
                    return ExitCode::from(2);
                }
            };
            properties.extend(
                text.lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .map(str::to_owned),
            );
        } else {
            properties.push(arg.clone());
        }
    }
    if properties.is_empty() {
        eprintln!("error: the rulebook is empty");
        return ExitCode::from(2);
    }

    // An optional trace corpus: per-name event counts for the coverage
    // and dead-table analyses, and the self-check replay for --fix-prune.
    let mut voc = Vocabulary::new();
    let trace = match &trace_path {
        None => None,
        Some(path) => match load(path, &mut voc) {
            Ok(trace) => Some(trace),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        },
    };
    let corpus: Option<Vec<(Name, u64)>> = trace.as_ref().map(|trace| {
        let mut counts: std::collections::BTreeMap<Name, u64> = std::collections::BTreeMap::new();
        for event in trace.events() {
            *counts.entry(event.name).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    });

    let opts = AnalysisOptions {
        corpus,
        ..AnalysisOptions::default()
    };
    let (engine, diagnostics) = match Engine::compile_with_analysis(&properties, &mut voc, &opts) {
        Ok(compiled) => compiled,
        Err(errors) => {
            emit_diagnostics(&error_diagnostics(&errors, &voc), &properties, format);
            return ExitCode::from(2);
        }
    };
    emit_diagnostics(&diagnostics, &properties, format);

    if fix_prune {
        let corpus_set: Option<NameSet> = opts
            .corpus
            .as_ref()
            .map(|counts| counts.iter().map(|&(name, _)| name).collect());
        let outcome = prune_dead(engine.fused(), corpus_set.as_ref(), opts.state_budget);
        let stats = outcome.stats;
        println!(
            "fix-prune: dropped {} of {} action-table rows ({} entries), \
             neutralized {} further entries",
            stats.dropped_rows,
            stats.rows,
            stats.dropped_entries(),
            stats.neutralized_entries,
        );
        // The prune is verdict-preserving on corpus traces by construction;
        // trust nothing, replay the corpus through both rulebooks.
        if let Some(trace) = &trace {
            let mut original = engine.fused().instantiate();
            let mut pruned = outcome.fused.instantiate();
            for event in trace.events() {
                for (o, p) in original.iter_mut().zip(pruned.iter_mut()) {
                    if o.observe(*event) != p.observe(*event) {
                        eprintln!(
                            "error: fix-prune self-check failed: verdicts diverge at {} \
                             `{}` — this is a bug, the unpruned rulebook stands",
                            event.time,
                            voc.resolve(event.name),
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            let end = trace.end_time();
            for (o, p) in original.iter_mut().zip(pruned.iter_mut()) {
                if o.finish(end) != p.finish(end) {
                    eprintln!(
                        "error: fix-prune self-check failed: final verdicts diverge — \
                         this is a bug, the unpruned rulebook stands"
                    );
                    return ExitCode::from(2);
                }
            }
            println!(
                "fix-prune: self-check ok — verdicts identical over {} corpus events",
                trace.len()
            );
        }
    }

    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::from(2)
    } else if warnings > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Print lint findings: one text line or one NDJSON object per finding,
/// plus a text-mode summary tail.
fn emit_diagnostics(diagnostics: &[Diagnostic], properties: &[String], format: ReportFormat) {
    match format {
        ReportFormat::Text => {
            for diagnostic in diagnostics {
                println!("{}", diagnostic.render_text());
            }
            let (mut errors, mut warnings, mut notes) = (0, 0, 0);
            for diagnostic in diagnostics {
                match diagnostic.severity {
                    Severity::Error => errors += 1,
                    Severity::Warning => warnings += 1,
                    Severity::Note => notes += 1,
                }
            }
            println!(
                "lint: {} propert{}, {errors} error(s), {warnings} warning(s), {notes} note(s)",
                properties.len(),
                if properties.len() == 1 { "y" } else { "ies" },
            );
        }
        ReportFormat::Json => {
            for diagnostic in diagnostics {
                println!("{}", diagnostic.render_json());
            }
        }
    }
}

/// `lomon profile` — replay a recorded trace through the fused rulebook
/// program and rank the unique recognizer groups by monitoring work
/// ([`lomon::engine::profile_trace`]). `--top K` bounds the ranking
/// (default 10), `--format json` emits one machine-readable object, and
/// `--trace-out FILE` writes the phase timeline as Chrome trace-event
/// JSON for `chrome://tracing` / Perfetto.
///
/// Exit code: 0 when the profile ran (violations are *reported*, not
/// failed on — this is a profiler, `lomon check` owns the verdict
/// contract), 1 on unreadable inputs or compile errors, 2 on usage errors.
fn profile(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let deny_warnings = take_bool_flag(&mut args, "--deny-warnings");
    let format = match take_report_format_flag(&mut args) {
        Ok(format) => format,
        Err(code) => return code,
    };
    let top = match take_value_flag(&mut args, "--top") {
        Ok(None) => 10usize,
        Ok(Some(raw)) => match parse_flag_value::<usize>("--top", &raw) {
            Ok(0) => {
                eprintln!("error: `--top` must be positive");
                return usage();
            }
            Ok(top) => top,
            Err(code) => return code,
        },
        Err(code) => return code,
    };
    let trace_out = match take_value_flag(&mut args, "--trace-out") {
        Ok(path) => path,
        Err(code) => return code,
    };
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("error: unknown flag `{flag}`");
        return usage();
    }
    // The last positional is the trace file; everything before it is the
    // rulebook (files with one property per line, or inline properties).
    let Some((trace_path, rulebook)) = args.split_last() else {
        eprintln!("error: `lomon profile` needs a rulebook and a trace file");
        return usage();
    };
    if rulebook.is_empty() {
        eprintln!("error: `lomon profile` needs at least one property before the trace file");
        return usage();
    }
    let mut properties: Vec<String> = Vec::new();
    for arg in rulebook {
        if std::path::Path::new(arg).is_file() {
            let text = match std::fs::read_to_string(arg) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: cannot read {arg}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            properties.extend(
                text.lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .map(str::to_owned),
            );
        } else {
            properties.push(arg.clone());
        }
    }
    if properties.is_empty() {
        eprintln!("error: the rulebook is empty");
        return ExitCode::FAILURE;
    }

    // Every phase below runs under a tracer span; with `--trace-out` the
    // resulting timeline is written as Chrome trace-event JSON.
    let tracer = Tracer::new();
    let mut voc = Vocabulary::new();
    let span = tracer.span("load-trace", "phase");
    let trace = match load(trace_path, &mut voc) {
        Ok(trace) => trace,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    span.finish();
    let span = tracer.span("compile", "phase");
    let engine = match compile_all(&properties, &mut voc, deny_warnings) {
        Ok(engine) => engine,
        Err(code) => return code,
    };
    span.finish();
    let span = tracer.span("replay", "phase");
    let report = profile_trace(&engine, trace.events(), trace.end_time(), None);
    span.finish();

    let span = tracer.span("report", "phase");
    match format {
        ReportFormat::Text => print!("{}", report.render_text(&engine, top)),
        ReportFormat::Json => println!("{}", report.render_json(&engine, top)),
    }
    span.finish();
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, tracer.render_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: wrote {} span(s) to {path} (chrome://tracing or Perfetto)",
            tracer.len()
        );
    }
    ExitCode::SUCCESS
}

fn vcd(path: &str) -> ExitCode {
    let mut voc = Vocabulary::new();
    match load(path, &mut voc) {
        Ok(trace) => {
            print!("{}", write_vcd(&trace, &voc));
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn gen(text: &str, rest: &[String]) -> ExitCode {
    let seed = match rest.first() {
        None => 1u64,
        Some(raw) => match raw.parse() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed `{raw}` is not an unsigned integer");
                return usage();
            }
        },
    };
    let episodes = match rest.get(1) {
        None => 3u32,
        Some(raw) => match raw.parse() {
            Ok(episodes) => episodes,
            Err(_) => {
                eprintln!("error: episode count `{raw}` is not an unsigned integer");
                return usage();
            }
        },
    };
    let mut voc = Vocabulary::new();
    let property = match parse_property(text, &mut voc) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error in property:\n{}", e.display_with_source(text));
            return ExitCode::FAILURE;
        }
    };
    let config = GeneratorConfig {
        episodes,
        ..GeneratorConfig::new(seed)
    };
    let generated = generate(&property, &config);
    print!("{}", write_trace(&generated.trace, &voc));
    ExitCode::SUCCESS
}

fn demo() -> ExitCode {
    let report = run_scenario(&ScenarioConfig::nominal(1));
    println!("# trace recorded from the face-recognition platform (seed 1)");
    print!("{}", write_trace(&report.trace, &report.vocabulary));
    eprintln!();
    for (label, verdict) in &report.verdicts {
        eprintln!("online verdict: {label} → {verdict}");
    }
    ExitCode::SUCCESS
}
