//! Whole-rulebook static analysis: vacuity, subsumption, conflict,
//! vocabulary coverage and dead-table detection over the compiled
//! representation.
//!
//! The well-formedness checks of [`crate::wf`] are per-property and
//! syntactic. This module asks *semantic* questions about the rulebook as
//! a whole, on the already-lowered [`CompiledProgram`]/[`FusedProgram`]
//! form — which is finite-state with bounded counters, so the questions
//! are decidable by bounded reachability (see [`reach`]). Results come
//! back as [`Diagnostic`]s with stable machine-readable codes:
//!
//! | Code | Severity | Meaning |
//! |---|---|---|
//! | `L001` | error | property does not parse |
//! | `L002` | error | property is ill-formed (Fig. 3 side conditions) |
//! | `L003` | warning | duplicate properties (identical recognizers) |
//! | `L004` | warning | vacuous property: no bounded trace satisfies it non-vacuously |
//! | `L005` | warning | subsumed/equivalent property pair (same alphabet) |
//! | `L006` | warning | conflicting property pair |
//! | `L007` | note | vocabulary names no property observes |
//! | `L008` | note | trace-corpus events with zero subscriber rows |
//! | `L009` | note | unreachable action-table rows/entries |
//!
//! `L001`/`L002` are emitted by the engine's compile pipeline (they
//! pre-date lowering); everything else comes out of [`analyze`]. The
//! semantic verdicts are *bounded-model* verdicts: exact for traces of at
//! most each walk's horizon ([`CompiledProgram::bounded_horizon`]), and
//! validated against exhaustive trace enumeration through the interpreter
//! backend in `crates/core/tests/analysis_gate.rs`.

mod reach;

pub use reach::{pair_facts, satisfiable, PairFacts};

use std::sync::Arc;

use lomon_trace::{json_escape, Name, NameSet, Vocabulary};

use crate::compiled::PruneStats;
use crate::fused::FusedProgram;

/// How serious a [`Diagnostic`] is — drives lint exit codes and the
/// engine's default printing (warnings shown, notes reserved for `lint`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The rulebook is unusable (parse / well-formedness failure).
    Error,
    /// The rulebook compiles but something is almost certainly wrong.
    Warning,
    /// Informational finding.
    Note,
}

impl Severity {
    /// Lower-case label, as rendered in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Stable machine-readable diagnostic codes (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the codes; meanings in the module table
pub enum DiagCode {
    L001,
    L002,
    L003,
    L004,
    L005,
    L006,
    L007,
    L008,
    L009,
}

impl DiagCode {
    /// The code as printed, e.g. `"L004"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::L001 => "L001",
            DiagCode::L002 => "L002",
            DiagCode::L003 => "L003",
            DiagCode::L004 => "L004",
            DiagCode::L005 => "L005",
            DiagCode::L006 => "L006",
            DiagCode::L007 => "L007",
            DiagCode::L008 => "L008",
            DiagCode::L009 => "L009",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::L001 | DiagCode::L002 => Severity::Error,
            DiagCode::L003 | DiagCode::L004 | DiagCode::L005 | DiagCode::L006 => Severity::Warning,
            DiagCode::L007 | DiagCode::L008 | DiagCode::L009 => Severity::Note,
        }
    }
}

/// One lint finding: a coded, severity-tagged message about zero or more
/// properties of the rulebook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Rulebook property ids the finding is about (may be empty for
    /// rulebook-level findings such as vocabulary coverage).
    pub properties: Vec<usize>,
    /// Human-readable message with names resolved through the vocabulary.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic; the severity is derived from the code.
    pub fn new(code: DiagCode, properties: Vec<usize>, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            properties,
            message,
        }
    }

    /// Render as one text line: `warning[L004]: message`.
    pub fn render_text(&self) -> String {
        format!(
            "{}[{}]: {}",
            self.severity.label(),
            self.code.as_str(),
            self.message
        )
    }

    /// Render as one JSON object (NDJSON-friendly):
    /// `{"code": "L004", "severity": "warning", "properties": [0], "message": "..."}`.
    pub fn render_json(&self) -> String {
        let properties = self
            .properties
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"code\": \"{}\", \"severity\": \"{}\", \"properties\": [{}], \"message\": \"{}\"}}",
            self.code.as_str(),
            self.severity.label(),
            properties,
            json_escape(&self.message)
        )
    }
}

/// Knobs for [`analyze`]. The defaults are what `Engine::compile_with_analysis`
/// and `lomon lint` use.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Run the semantic walks (vacuity `L004`, subsumption `L005`,
    /// conflict `L006`).
    pub semantic: bool,
    /// Run the dead-table walk (`L009`).
    pub dead_table: bool,
    /// Maximum distinct states per bounded-model walk; a walk that would
    /// exceed it is silently skipped (no verdict, never a false one).
    pub state_budget: usize,
    /// Maximum property pairs to product-walk for `L005`/`L006`.
    pub max_pairs: usize,
    /// Skip semantic walks whose horizon exceeds this many unit steps
    /// (large range minima make exhaustive walks pointless).
    pub horizon_cap: usize,
    /// Per-name event counts of a trace corpus: enables `L008` and
    /// restricts the dead-table walk to names the corpus can produce.
    pub corpus: Option<Vec<(Name, u64)>>,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            semantic: true,
            dead_table: true,
            state_budget: 20_000,
            max_pairs: 256,
            horizon_cap: 24,
            corpus: None,
        }
    }
}

/// `"property 3 `a << start once`"` — how diagnostics refer to properties.
fn prop_label(id: usize, displays: &[&str]) -> String {
    match displays.get(id) {
        Some(text) => format!("property {id} `{text}`"),
        None => format!("property {id}"),
    }
}

fn label_list(ids: &[u32], displays: &[&str]) -> String {
    ids.iter()
        .map(|&p| prop_label(p as usize, displays))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The corpus names with at least one occurrence, as a set.
fn corpus_set(opts: &AnalysisOptions) -> Option<NameSet> {
    opts.corpus.as_ref().map(|corpus| {
        corpus
            .iter()
            .filter(|&&(_, count)| count > 0)
            .map(|&(name, _)| name)
            .collect()
    })
}

/// Run every rulebook-level analysis over a fused program and return the
/// findings (codes `L003`–`L009`; parse and well-formedness errors are
/// reported by the compile pipeline before lowering, so they never reach
/// this function). `displays[p]` is property `p`'s source text, used in
/// messages.
pub fn analyze(
    fused: &FusedProgram,
    displays: &[&str],
    voc: &Vocabulary,
    opts: &AnalysisOptions,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // L003 — duplicates: fusion already interned structurally identical
    // properties; surface the sharing as a lint instead of only silently
    // exploiting it.
    for g in 0..fused.group_count() {
        let members = fused.members(g);
        if members.len() >= 2 {
            out.push(Diagnostic::new(
                DiagCode::L003,
                members.iter().map(|&p| p as usize).collect(),
                format!(
                    "duplicate properties: {} compile to the same recognizer \
                     — one monitor serves all of them",
                    label_list(members, displays)
                ),
            ));
        }
    }

    if opts.semantic {
        // L004 — vacuity, one walk per unique group.
        for g in 0..fused.group_count() {
            let program = fused.group(g);
            let horizon = program.bounded_horizon();
            if horizon > opts.horizon_cap {
                continue;
            }
            if reach::satisfiable(program, horizon, opts.state_budget) == Some(false) {
                let members = fused.members(g);
                out.push(Diagnostic::new(
                    DiagCode::L004,
                    members.iter().map(|&p| p as usize).collect(),
                    format!(
                        "{} is vacuous: no trace of up to {horizon} steps \
                         completes a satisfied episode — it can only ever \
                         pass by never firing",
                        label_list(members, displays)
                    ),
                ));
            }
        }

        // L005/L006 — pairwise product walks over group representatives.
        let mut walked = 0usize;
        'pairs: for i in 0..fused.group_count() {
            for j in (i + 1)..fused.group_count() {
                let (pi, pj) = (fused.group(i), fused.group(j));
                let same_alphabet = pi.alphabet() == pj.alphabet();
                // Disjoint alphabets can neither subsume (different
                // alphabets) nor conflict (their traces interleave freely).
                if !same_alphabet && !pi.alphabet().intersects(pj.alphabet()) {
                    continue;
                }
                let horizon = pi.bounded_horizon().max(pj.bounded_horizon());
                if horizon > opts.horizon_cap {
                    continue;
                }
                if walked >= opts.max_pairs {
                    break 'pairs;
                }
                walked += 1;
                let Some(facts) = reach::pair_facts(pi, pj, horizon, opts.state_budget) else {
                    continue;
                };
                let ri = fused.members(i)[0] as usize;
                let rj = fused.members(j)[0] as usize;
                if same_alphabet {
                    let (li, lj) = (prop_label(ri, displays), prop_label(rj, displays));
                    match (facts.subsumes_j(), facts.subsumes_i()) {
                        (true, true) => out.push(Diagnostic::new(
                            DiagCode::L005,
                            vec![ri, rj],
                            format!(
                                "{li} and {lj} are equivalent within the \
                                 bounded model (horizon {horizon}): they \
                                 admit exactly the same traces"
                            ),
                        )),
                        (true, false) => out.push(Diagnostic::new(
                            DiagCode::L005,
                            vec![ri, rj],
                            format!(
                                "{lj} is subsumed by {li}: within the \
                                 bounded model (horizon {horizon}) every \
                                 violation it can raise, {li} raises too"
                            ),
                        )),
                        (false, true) => out.push(Diagnostic::new(
                            DiagCode::L005,
                            vec![ri, rj],
                            format!(
                                "{li} is subsumed by {lj}: within the \
                                 bounded model (horizon {horizon}) every \
                                 violation it can raise, {lj} raises too"
                            ),
                        )),
                        (false, false) => {}
                    }
                }
                if facts.conflicting() {
                    let (li, lj) = (prop_label(ri, displays), prop_label(rj, displays));
                    out.push(Diagnostic::new(
                        DiagCode::L006,
                        vec![ri, rj],
                        format!(
                            "{li} and {lj} conflict: each is satisfiable \
                             alone, but within the bounded model (horizon \
                             {horizon}) no trace satisfies one without \
                             violating the other"
                        ),
                    ));
                }
            }
        }
    }

    // L007 — vocabulary names no property observes.
    if fused.property_count() > 0 {
        let unobserved: Vec<Name> = voc
            .iter()
            .filter(|&name| fused.subscribers(name).0.is_empty())
            .collect();
        if !unobserved.is_empty() {
            out.push(Diagnostic::new(
                DiagCode::L007,
                Vec::new(),
                format!(
                    "{} vocabulary name{} no property observes: {}",
                    unobserved.len(),
                    if unobserved.len() == 1 { "" } else { "s" },
                    name_listing(&unobserved, voc)
                ),
            ));
        }
    }

    // L008 — corpus events dispatched nowhere.
    if let Some(corpus) = &opts.corpus {
        let silent: Vec<(Name, u64)> = corpus
            .iter()
            .filter(|&&(name, count)| count > 0 && fused.subscribers(name).0.is_empty())
            .copied()
            .collect();
        if !silent.is_empty() {
            let total: u64 = silent.iter().map(|&(_, count)| count).sum();
            let listing = silent
                .iter()
                .take(8)
                .map(|&(name, count)| format!("{} (×{count})", voc.resolve(name)))
                .collect::<Vec<_>>()
                .join(", ");
            let ellipsis = if silent.len() > 8 { ", …" } else { "" };
            out.push(Diagnostic::new(
                DiagCode::L008,
                Vec::new(),
                format!(
                    "{total} trace event{} hit zero subscriber rows: \
                     {listing}{ellipsis}",
                    if total == 1 { "" } else { "s" },
                ),
            ));
        }
    }

    // L009 — dead action-table rows/entries.
    if opts.dead_table {
        let corpus = corpus_set(opts);
        for g in 0..fused.group_count() {
            let program = fused.group(g);
            let Some(live) = reach::live_mask(program, corpus.as_ref(), opts.state_budget) else {
                continue;
            };
            let drop = droppable_rows(program.alphabet(), corpus.as_ref());
            let (_, stats) = program.pruned(&live, &drop);
            if stats.dropped_rows == 0 && stats.neutralized_entries == 0 {
                continue;
            }
            let members = fused.members(g);
            let scope = if corpus.is_some() {
                " given the trace corpus"
            } else {
                ""
            };
            out.push(Diagnostic::new(
                DiagCode::L009,
                members.iter().map(|&p| p as usize).collect(),
                format!(
                    "action table of {}: {} of {} rows and {} further \
                     entries are unreachable{scope} (prunable with \
                     --fix-prune)",
                    label_list(members, displays),
                    stats.dropped_rows,
                    stats.rows,
                    stats.neutralized_entries,
                ),
            ));
        }
    }

    out
}

fn name_listing(names: &[Name], voc: &Vocabulary) -> String {
    let listing = names
        .iter()
        .take(8)
        .map(|&n| voc.resolve(n).to_string())
        .collect::<Vec<_>>()
        .join(", ");
    if names.len() > 8 {
        format!("{listing}, …")
    } else {
        listing
    }
}

/// Alphabet names whose rows can be dropped outright: with a corpus, the
/// names the corpus can never produce (their rows are never consulted on
/// corpus traces); without one, nothing.
fn droppable_rows(alphabet: &NameSet, corpus: Option<&NameSet>) -> NameSet {
    match corpus {
        Some(corpus) => alphabet.iter().filter(|&n| !corpus.contains(n)).collect(),
        None => NameSet::new(),
    }
}

/// A pruned rulebook plus what the pruning removed.
#[derive(Debug)]
pub struct PruneOutcome {
    /// The rebuilt fused program (same groups, smaller tables).
    pub fused: FusedProgram,
    /// Aggregate row/entry statistics over all groups.
    pub stats: PruneStats,
}

/// Prune every group's action table: drop rows the corpus can never
/// exercise and neutralize entries the liveness walk proved unreachable,
/// then reassemble the fused rulebook around the rewritten programs.
///
/// The result is **verdict-preserving** on every trace whose events stay
/// within the corpus names (all traces, when `corpus` is `None`); the
/// `ops` accounting of pruned monitors differs. Groups whose liveness walk
/// exceeds `state_budget` are kept unchanged.
pub fn prune_dead(
    fused: &FusedProgram,
    corpus: Option<&NameSet>,
    state_budget: usize,
) -> PruneOutcome {
    let mut stats = PruneStats::default();
    let mut groups = Vec::with_capacity(fused.group_count());
    for g in 0..fused.group_count() {
        let program = fused.group(g);
        match reach::live_mask(program, corpus, state_budget) {
            Some(live) => {
                let drop = droppable_rows(program.alphabet(), corpus);
                let (pruned, s) = program.pruned(&live, &drop);
                stats.absorb(s);
                groups.push(Arc::new(pruned));
            }
            None => groups.push(Arc::clone(program)),
        }
    }
    PruneOutcome {
        fused: fused.with_groups(groups),
        stats,
    }
}
