//! Quickstart: parse a loose-ordering property, run its direct monitor
//! over a couple of traces and read the diagnostics.
//!
//! ```sh
//! cargo run --example quickstart            # monitor two traces
//! cargo run --example quickstart -- --dot   # dump the Fig. 5 automaton
//! ```

use lomon::core::ast::Property;
use lomon::core::monitor::build_monitor;
use lomon::core::parse::parse_property;
use lomon::core::recognizer::RangeRecognizer;
use lomon::core::verdict::{run_to_end, Monitor};
use lomon::trace::{Trace, Vocabulary};

fn main() {
    let mut voc = Vocabulary::new();

    // The paper's Example 2: before starting face recognition, the IPU's
    // three configuration registers must each have been written — in any
    // order (that is the "loose" part).
    let text = "all{set_imgAddr, set_glAddr, set_glSize} << start once";
    let property = parse_property(text, &mut voc).expect("property parses");
    println!("property: {}", property.display(&voc));

    if std::env::args().any(|a| a == "--dot") {
        dump_automaton(&property, &voc);
        return;
    }

    let img = voc.lookup("set_imgAddr").unwrap();
    let gl = voc.lookup("set_glAddr").unwrap();
    let sz = voc.lookup("set_glSize").unwrap();
    let start = voc.lookup("start").unwrap();

    // A good trace: the writes arrive in a scrambled order, then start.
    let good = Trace::from_names([gl, sz, img, start]);
    let mut monitor = build_monitor(property.clone(), &voc).expect("well-formed");
    let verdict = run_to_end(&mut monitor, &good);
    println!("good trace  → {verdict}");

    // A bad trace: start fires before the gallery size was configured.
    let bad = Trace::from_names([gl, img, start]);
    let mut monitor = build_monitor(property, &voc).expect("well-formed");
    let verdict = run_to_end(&mut monitor, &bad);
    println!("bad trace   → {verdict}");
    if let Some(violation) = monitor.violation() {
        println!("diagnostic  → {}", violation.display(&voc));
    }
}

/// Dump the elementary range recognizer (paper Fig. 5) for the first range
/// of the property, in Graphviz DOT.
fn dump_automaton(property: &Property, voc: &Vocabulary) {
    use lomon::core::context::linear_contexts;

    let Property::Antecedent(a) = property else {
        return;
    };
    let stop = [a.trigger].into_iter().collect();
    let contexts = linear_contexts(&a.antecedent, &stop);
    let range = a.antecedent.fragments[0].ranges[0].clone();
    let recognizer = RangeRecognizer::new(range, contexts[0][0].clone());
    println!("{}", recognizer.dot(voc));
}
