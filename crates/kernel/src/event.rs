//! Kernel events (SystemC `sc_event` analogue).

use crate::process::ProcessId;

/// Identifier of a kernel event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

impl EventId {
    /// Dense index (creation order).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild from an index (no validation).
    pub fn from_index(index: usize) -> Self {
        EventId(index)
    }
}

/// Book-keeping for one event: the processes waiting on its next
/// notification (dynamic sensitivity; cleared when it fires).
#[derive(Debug, Default)]
pub struct EventRecord {
    /// Waiting processes, woken in registration order.
    pub waiters: Vec<ProcessId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_roundtrip() {
        assert_eq!(EventId::from_index(2).index(), 2);
    }

    #[test]
    fn record_default_is_empty() {
        assert!(EventRecord::default().waiters.is_empty());
    }
}
