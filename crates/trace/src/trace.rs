//! Event traces: time-ordered sequences of interface events.

use crate::{Name, NameSet, SimTime, TimedEvent};

/// A finite, time-ordered sequence of [`TimedEvent`]s.
///
/// A trace is what a monitor consumes: either recorded online from the
/// simulation kernel's observation hooks, or read back from a file for
/// trace-replay monitoring. Traces also remember an optional *end time* — the
/// simulation instant at which observation stopped — which timed monitors
/// need to flag deadlines that expired after the last event.
///
/// Pushing events enforces monotone (non-decreasing) timestamps, mirroring
/// the simulation kernel's monotone clock.
///
/// # Example
///
/// ```
/// use lomon_trace::{SimTime, Trace, Vocabulary};
/// let mut voc = Vocabulary::new();
/// let a = voc.input("a");
/// let b = voc.input("b");
///
/// let mut trace = Trace::new();
/// trace.push(a, SimTime::from_ns(1));
/// trace.push(b, SimTime::from_ns(2));
/// assert_eq!(trace.names().collect::<Vec<_>>(), vec![a, b]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TimedEvent>,
    end_time: Option<SimTime>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a trace from `(time, name)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the timestamps are not non-decreasing.
    pub fn from_pairs<I: IntoIterator<Item = (SimTime, Name)>>(pairs: I) -> Self {
        let mut trace = Trace::new();
        for (time, name) in pairs {
            trace.push(name, time);
        }
        trace
    }

    /// Build an untimed trace: events are stamped 1ns, 2ns, 3ns, …
    ///
    /// Handy for tests of the untimed patterns where only the order matters.
    pub fn from_names<I: IntoIterator<Item = Name>>(names: I) -> Self {
        let mut trace = Trace::new();
        for (k, name) in names.into_iter().enumerate() {
            trace.push(name, SimTime::from_ns(k as u64 + 1));
        }
        trace
    }

    /// Append an event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is smaller than the previous event's timestamp or
    /// than a previously recorded end time: simulated time never goes
    /// backwards.
    pub fn push(&mut self, name: Name, time: SimTime) {
        if let Some(last) = self.events.last() {
            assert!(
                time >= last.time,
                "trace timestamps must be non-decreasing: {} after {}",
                time,
                last.time
            );
        }
        if let Some(end) = self.end_time {
            assert!(
                time >= end,
                "event at {time} before recorded end time {end}"
            );
            self.end_time = Some(time);
        }
        self.events.push(TimedEvent::new(name, time));
    }

    /// Record the instant observation stopped (for deadline checks past the
    /// final event). Overrides any earlier end time.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last event.
    pub fn set_end_time(&mut self, time: SimTime) {
        if let Some(last) = self.events.last() {
            assert!(time >= last.time, "end time {time} precedes last event");
        }
        self.end_time = Some(time);
    }

    /// Remove all events and any recorded end time, keeping the event
    /// buffer's capacity. Lets batch readers (e.g. `lomon check` over many
    /// trace files) reuse one allocation across files.
    pub fn clear(&mut self) {
        self.events.clear();
        self.end_time = None;
    }

    /// The instant observation stopped: the recorded end time if set,
    /// otherwise the last event's timestamp, otherwise time zero.
    pub fn end_time(&self) -> SimTime {
        self.end_time
            .or_else(|| self.events.last().map(|e| e.time))
            .unwrap_or(SimTime::ZERO)
    }

    /// All events in order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate over events.
    pub fn iter(&self) -> std::slice::Iter<'_, TimedEvent> {
        self.events.iter()
    }

    /// Iterate over just the names, dropping timestamps.
    pub fn names(&self) -> impl Iterator<Item = Name> + '_ {
        self.events.iter().map(|e| e.name)
    }

    /// The trace restricted to events whose name is in `alphabet`,
    /// preserving order and timestamps.
    ///
    /// Loose-ordering formulas "are interpreted on sequences where only the
    /// names of the root pattern appear" (Section 4); monitors apply this
    /// projection to ignore unrelated platform traffic.
    pub fn project(&self, alphabet: &NameSet) -> Trace {
        let mut out = Trace {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| alphabet.contains(e.name))
                .collect(),
            end_time: None,
        };
        out.end_time = Some(self.end_time());
        out
    }

    /// Concatenate another trace after this one.
    ///
    /// # Panics
    ///
    /// Panics if `other` starts before this trace ends.
    pub fn extend_with(&mut self, other: &Trace) {
        for e in &other.events {
            self.push(e.name, e.time);
        }
        if let Some(end) = other.end_time {
            self.set_end_time(end);
        }
    }
}

impl IntoIterator for Trace {
    type Item = TimedEvent;
    type IntoIter = std::vec::IntoIter<TimedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TimedEvent;
    type IntoIter = std::slice::Iter<'a, TimedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<TimedEvent> for Trace {
    /// # Panics
    ///
    /// Panics if the events' timestamps are not non-decreasing.
    fn from_iter<T: IntoIterator<Item = TimedEvent>>(iter: T) -> Self {
        let mut trace = Trace::new();
        for e in iter {
            trace.push(e.name, e.time);
        }
        trace
    }
}

impl Extend<TimedEvent> for Trace {
    fn extend<T: IntoIterator<Item = TimedEvent>>(&mut self, iter: T) {
        for e in iter {
            self.push(e.name, e.time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    fn abc() -> (Vocabulary, Name, Name, Name) {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.input("b");
        let c = voc.output("c");
        (voc, a, b, c)
    }

    #[test]
    fn push_and_iterate() {
        let (_voc, a, b, _c) = abc();
        let mut t = Trace::new();
        t.push(a, SimTime::from_ns(1));
        t.push(b, SimTime::from_ns(1)); // same instant is fine (delta cycle)
        t.push(a, SimTime::from_ns(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.names().collect::<Vec<_>>(), vec![a, b, a]);
        assert_eq!(t.end_time(), SimTime::from_ns(3));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_rejects_time_travel() {
        let (_voc, a, _b, _c) = abc();
        let mut t = Trace::new();
        t.push(a, SimTime::from_ns(5));
        t.push(a, SimTime::from_ns(4));
    }

    #[test]
    fn from_names_stamps_sequentially() {
        let (_voc, a, b, _c) = abc();
        let t = Trace::from_names([a, b, a]);
        let times: Vec<_> = t.iter().map(|e| e.time.as_ns()).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn projection_keeps_order_and_end_time() {
        let (_voc, a, b, c) = abc();
        let mut t = Trace::from_pairs([
            (SimTime::from_ns(1), a),
            (SimTime::from_ns(2), c),
            (SimTime::from_ns(3), b),
            (SimTime::from_ns(4), c),
        ]);
        t.set_end_time(SimTime::from_ns(10));
        let alphabet: NameSet = [a, b].into_iter().collect();
        let p = t.project(&alphabet);
        assert_eq!(p.names().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(p.end_time(), SimTime::from_ns(10));
    }

    #[test]
    fn end_time_defaults() {
        let (_voc, a, _b, _c) = abc();
        assert_eq!(Trace::new().end_time(), SimTime::ZERO);
        let t = Trace::from_pairs([(SimTime::from_ns(7), a)]);
        assert_eq!(t.end_time(), SimTime::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "precedes last event")]
    fn end_time_cannot_precede_events() {
        let (_voc, a, _b, _c) = abc();
        let mut t = Trace::from_pairs([(SimTime::from_ns(7), a)]);
        t.set_end_time(SimTime::from_ns(3));
    }

    #[test]
    fn extend_with_concatenates() {
        let (_voc, a, b, _c) = abc();
        let mut t1 = Trace::from_pairs([(SimTime::from_ns(1), a)]);
        let t2 = Trace::from_pairs([(SimTime::from_ns(2), b)]);
        t1.extend_with(&t2);
        assert_eq!(t1.names().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn collect_from_iterator() {
        let (_voc, a, b, _c) = abc();
        let t: Trace = vec![
            TimedEvent::new(a, SimTime::from_ns(1)),
            TimedEvent::new(b, SimTime::from_ns(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 2);
        let back: Vec<TimedEvent> = t.clone().into_iter().collect();
        assert_eq!(back.len(), 2);
        let borrowed: Vec<&TimedEvent> = (&t).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }
}
