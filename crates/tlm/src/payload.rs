//! The generic payload — the TLM-2.0 transaction object, reduced to what
//! loose-ordering monitoring needs: command, address, one data word and a
//! response status. Blocking transport (`b_transport`) is a plain function
//! call, exactly as in TLM-LT.

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlmCommand {
    /// Load a word from the target.
    Read,
    /// Store a word to the target.
    Write,
}

/// Transaction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlmResponse {
    /// Not yet processed by a target.
    Incomplete,
    /// Completed successfully.
    Ok,
    /// No target claims the address.
    AddressError,
    /// The target rejected the access (e.g. write to a read-only register).
    CommandError,
}

/// A TLM generic-payload transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenericPayload {
    /// Read or write.
    pub command: TlmCommand,
    /// Global bus address.
    pub address: u64,
    /// Data word: written value for writes, filled by the target for reads.
    pub data: u64,
    /// Response status, set by the target.
    pub response: TlmResponse,
}

impl GenericPayload {
    /// A read transaction at `address`.
    pub fn read(address: u64) -> Self {
        GenericPayload {
            command: TlmCommand::Read,
            address,
            data: 0,
            response: TlmResponse::Incomplete,
        }
    }

    /// A write of `data` at `address`.
    pub fn write(address: u64, data: u64) -> Self {
        GenericPayload {
            command: TlmCommand::Write,
            address,
            data,
            response: TlmResponse::Incomplete,
        }
    }

    /// Whether the transaction completed successfully.
    pub fn is_ok(&self) -> bool {
        self.response == TlmResponse::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let r = GenericPayload::read(0x40);
        assert_eq!(r.command, TlmCommand::Read);
        assert_eq!(r.address, 0x40);
        assert_eq!(r.response, TlmResponse::Incomplete);
        assert!(!r.is_ok());

        let w = GenericPayload::write(0x44, 7);
        assert_eq!(w.command, TlmCommand::Write);
        assert_eq!(w.data, 7);
    }

    #[test]
    fn ok_after_response() {
        let mut t = GenericPayload::read(0);
        t.response = TlmResponse::Ok;
        assert!(t.is_ok());
        t.response = TlmResponse::AddressError;
        assert!(!t.is_ok());
    }
}
