//! Integration tests for `lomon lint` (exit-code contract, fixture
//! rulebooks, JSON output, `--fix-prune`) and for the analysis wired into
//! `check`/`watch` (`--deny-warnings`, warning printing).

mod common;

use common::{lomon, stderr, stdout, PROPERTY};

fn exit_code(output: &std::process::Output) -> i32 {
    output.status.code().expect("lomon exits normally")
}

#[test]
fn clean_rulebook_exits_zero() {
    let output = lomon(&["lint", PROPERTY]);
    assert_eq!(exit_code(&output), 0, "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
}

#[test]
fn clean_fixture_rulebook_survives_deny_warnings() {
    let output = lomon(&["lint", "--deny-warnings", "tests/fixtures/ipu.rules"]);
    assert_eq!(exit_code(&output), 0, "stdout: {}", stdout(&output));
    assert!(
        stdout(&output).contains("2 properties"),
        "{}",
        stdout(&output)
    );
}

#[test]
fn defective_rulebook_reports_every_warning_class() {
    let output = lomon(&["lint", "tests/fixtures/lint/defects.rules"]);
    assert_eq!(exit_code(&output), 1);
    let text = stdout(&output);
    for code in ["L003", "L004", "L005", "L006"] {
        assert!(
            text.contains(&format!("warning[{code}]")),
            "{code} missing:\n{text}"
        );
    }
}

#[test]
fn deny_warnings_upgrades_to_exit_two() {
    let output = lomon(&[
        "lint",
        "--deny-warnings",
        "tests/fixtures/lint/defects.rules",
    ]);
    assert_eq!(exit_code(&output), 2);
}

#[test]
fn malformed_property_exits_two() {
    let output = lomon(&["lint", "all{a"]);
    assert_eq!(exit_code(&output), 2);
    assert!(
        stdout(&output).contains("error[L001]"),
        "{}",
        stdout(&output)
    );
}

#[test]
fn ill_formed_property_exits_two() {
    // Parses, but the trigger occurs inside the antecedent: L002.
    let output = lomon(&["lint", "start << start once"]);
    assert_eq!(exit_code(&output), 2);
    assert!(
        stdout(&output).contains("error[L002]"),
        "{}",
        stdout(&output)
    );
}

#[test]
fn missing_arguments_exit_two_with_usage() {
    let output = lomon(&["lint"]);
    assert_eq!(exit_code(&output), 2);
    assert!(stderr(&output).contains("usage:"), "{}", stderr(&output));
}

#[test]
fn json_format_emits_one_object_per_finding() {
    let output = lomon(&[
        "lint",
        "--format",
        "json",
        "tests/fixtures/lint/defects.rules",
    ]);
    assert_eq!(exit_code(&output), 1);
    let text = stdout(&output);
    for line in text.lines() {
        assert!(
            line.starts_with("{\"code\": \"L0") && line.ends_with('}'),
            "not a finding object: {line}"
        );
    }
    assert!(text.contains("\"severity\": \"warning\""), "{text}");
    assert!(text.contains("\"properties\": [0, 1]"), "{text}");
}

#[test]
fn trace_corpus_enables_coverage_notes_and_prune() {
    let output = lomon(&[
        "lint",
        "--trace",
        "tests/fixtures/lint/coverage.trace",
        "--fix-prune",
        "tests/fixtures/lint/coverage.rules",
    ]);
    // Notes only: still exit 0.
    assert_eq!(exit_code(&output), 0, "stderr: {}", stderr(&output));
    let text = stdout(&output);
    for code in ["L007", "L008", "L009"] {
        assert!(
            text.contains(&format!("note[{code}]")),
            "{code} missing:\n{text}"
        );
    }
    assert!(text.contains("telemetry"), "{text}");
    assert!(text.contains("dropped 1 of 3 action-table rows"), "{text}");
    assert!(text.contains("self-check ok"), "{text}");
}

#[test]
fn check_prints_analysis_warnings_and_deny_refuses() {
    let args = ["check", common::FIXTURE, PROPERTY, PROPERTY];
    let output = lomon(&args);
    // Duplicates warn on stderr but the check itself still runs.
    assert_eq!(exit_code(&output), 0, "stderr: {}", stderr(&output));
    assert!(
        stderr(&output).contains("warning[L003]"),
        "{}",
        stderr(&output)
    );

    let output = lomon(&[
        "check",
        "--deny-warnings",
        common::FIXTURE,
        PROPERTY,
        PROPERTY,
    ]);
    assert_eq!(exit_code(&output), 1);
    assert!(
        stderr(&output).contains("--deny-warnings"),
        "{}",
        stderr(&output)
    );
}

#[test]
fn watch_summary_names_backend_and_fusion_counters() {
    let stream = "{\"time\": \"10ns\", \"name\": \"start\"}\n{\"end\": \"50ns\"}\n";
    let output = common::lomon_with_stdin(
        &[
            "watch",
            "--format",
            "ndjson",
            "--backend",
            "compiled",
            PROPERTY,
        ],
        stream,
    );
    let text = stdout(&output);
    assert!(text.contains("\"backend\": \"compiled\""), "{text}");
    assert!(text.contains("\"unique_cells\": "), "{text}");
    assert!(text.contains("\"shared_hits\": 0"), "{text}");
}
