//! Telemetry for running campaigns: live episode counters, per-property
//! estimate gauges, SPRT progress, and per-episode duration — everything
//! a `/metrics` scrape needs to watch a million-episode campaign converge.
//!
//! All families are registered up front (at [`CampaignMetrics::register`]
//! time), so a scrape that races the campaign start still sees every
//! family; the values simply read zero until the first batch lands.
//! Workers publish through the shared engine
//! [`SessionMetrics`](lomon_engine::SessionMetrics) sink, and the
//! aggregator updates the campaign-level gauges at the jobs-independent
//! batch boundaries only — telemetry never participates in the
//! determinism-sensitive statistics.

use std::sync::Arc;

use lomon_engine::SessionMetrics;
use lomon_obs::{Counter, Gauge, Histogram, Registry};

/// The campaign-level metric families, plus the engine session sink the
/// workers flush into.
#[derive(Debug)]
pub struct CampaignMetrics {
    /// `lomon_smc_episodes_total`: episodes consumed so far.
    pub episodes: Arc<Counter>,
    /// `lomon_smc_episodes_planned`: the campaign's episode budget (the
    /// cap, for SPRT campaigns that may stop early).
    pub planned: Arc<Gauge>,
    /// `lomon_smc_batches_total`: scheduling batches aggregated.
    pub batches: Arc<Counter>,
    /// `lomon_smc_episode_duration_ns`: wall-clock per episode (simulate +
    /// monitor), recorded by the worker that ran it.
    pub episode_duration_ns: Arc<Histogram>,
    /// `lomon_smc_sprt_undecided`: SPRT tests still running (0 for
    /// estimation campaigns).
    pub sprt_undecided: Arc<Gauge>,
    /// `lomon_smc_mean{property=…}`: each property's current point
    /// estimate, indexed by compilation order.
    pub means: Vec<Arc<Gauge>>,
    /// `lomon_smc_half_width{property=…}`: the Chernoff–Hoeffding
    /// half-width at the current sample size.
    pub half_widths: Vec<Arc<Gauge>>,
    /// The engine-session families the workers flush their dispatch deltas
    /// into.
    pub session: Arc<SessionMetrics>,
}

impl CampaignMetrics {
    /// Register (or fetch) the campaign metric families in `registry`,
    /// with one mean/half-width gauge per property.
    pub fn register(registry: &Registry, n_props: usize) -> Arc<Self> {
        let series = |name, help| {
            (0..n_props)
                .map(|id| registry.gauge_with(name, help, vec![("property", id.to_string())]))
                .collect()
        };
        Arc::new(CampaignMetrics {
            episodes: registry.counter("lomon_smc_episodes_total", "Episodes consumed"),
            planned: registry.gauge(
                "lomon_smc_episodes_planned",
                "Episode budget of the running campaign",
            ),
            batches: registry.counter("lomon_smc_batches_total", "Scheduling batches aggregated"),
            episode_duration_ns: registry.histogram(
                "lomon_smc_episode_duration_ns",
                "Wall-clock nanoseconds per episode (simulate + monitor)",
            ),
            sprt_undecided: registry.gauge(
                "lomon_smc_sprt_undecided",
                "SPRT tests not yet decided (0 when estimating)",
            ),
            means: series(
                "lomon_smc_mean",
                "Current per-property satisfaction estimate",
            ),
            half_widths: series(
                "lomon_smc_half_width",
                "Chernoff-Hoeffding half-width at the current sample size",
            ),
            session: SessionMetrics::register(registry),
        })
    }
}
