//! Text format for traces.
//!
//! Trace-replay monitoring (the mode this reproduction targets, since there
//! are no SystemC bindings for Rust) needs a durable trace representation.
//! The format is line-oriented and human-editable:
//!
//! ```text
//! # comment
//! 10ns  in  set_imgAddr
//! 12ns  in  set_glAddr
//! 30ns  in  start
//! end 500ns
//! ```
//!
//! Each event line is `<time> <direction> <name>`; `direction` is `in` or
//! `out`. An optional final `end <time>` line records when observation
//! stopped (needed to detect deadlines that expired after the last event).

use std::fmt::Write as _;

use crate::name::Direction;
use crate::time::parse_sim_time;
use crate::{Trace, Vocabulary};

/// Error produced by [`read_trace`], with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse a trace from its text representation, interning names into `voc`.
///
/// # Errors
///
/// Returns a [`TraceParseError`] with the offending line on malformed input,
/// unknown directions, bad time literals, or non-monotone timestamps.
pub fn read_trace(text: &str, voc: &mut Vocabulary) -> Result<Trace, TraceParseError> {
    let mut trace = Trace::new();
    let mut last_time = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let first = fields.next().expect("non-empty line has a field");
        if first == "end" {
            let time_text = fields.next().ok_or_else(|| TraceParseError {
                line: line_no,
                message: "`end` requires a time".into(),
            })?;
            let time = parse_sim_time(time_text).map_err(|message| TraceParseError {
                line: line_no,
                message,
            })?;
            if let Some(last) = last_time {
                if time < last {
                    return Err(TraceParseError {
                        line: line_no,
                        message: format!("end time {time} precedes last event at {last}"),
                    });
                }
            }
            trace.set_end_time(time);
            continue;
        }
        let time = parse_sim_time(first).map_err(|message| TraceParseError {
            line: line_no,
            message,
        })?;
        let dir_text = fields.next().ok_or_else(|| TraceParseError {
            line: line_no,
            message: "missing direction (`in` or `out`)".into(),
        })?;
        let direction = match dir_text {
            "in" => Direction::Input,
            "out" => Direction::Output,
            other => {
                return Err(TraceParseError {
                    line: line_no,
                    message: format!("unknown direction `{other}` (expected `in` or `out`)"),
                })
            }
        };
        let name_text = fields.next().ok_or_else(|| TraceParseError {
            line: line_no,
            message: "missing event name".into(),
        })?;
        if let Some(junk) = fields.next() {
            return Err(TraceParseError {
                line: line_no,
                message: format!("unexpected trailing field `{junk}`"),
            });
        }
        if let Some(last) = last_time {
            if time < last {
                return Err(TraceParseError {
                    line: line_no,
                    message: format!("timestamp {time} precedes previous event at {last}"),
                });
            }
        }
        last_time = Some(time);
        let name = voc.intern(name_text, direction);
        trace.push(name, time);
    }
    Ok(trace)
}

/// Render a trace in the text format accepted by [`read_trace`].
pub fn write_trace(trace: &Trace, voc: &Vocabulary) -> String {
    let mut out = String::new();
    for e in trace.iter() {
        let _ = writeln!(
            out,
            "{} {} {}",
            e.time,
            voc.direction(e.name).label(),
            voc.resolve(e.name)
        );
    }
    // Only emit `end` when it adds information beyond the last event.
    let end = trace.end_time();
    if trace.is_empty() || end > trace.events().last().expect("non-empty").time {
        let _ = writeln!(out, "end {end}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    #[test]
    fn read_basic_trace() {
        let mut voc = Vocabulary::new();
        let text = "# configuration phase\n10ns in set_imgAddr\n12ns in start\n\n20ns out set_irq\nend 100ns\n";
        let trace = read_trace(text, &mut voc).expect("parses");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.end_time(), SimTime::from_ns(100));
        let set_irq = voc.lookup("set_irq").expect("interned");
        assert_eq!(voc.direction(set_irq), Direction::Output);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let b = voc.output("b");
        let mut t = Trace::from_pairs([(SimTime::from_ns(1), a), (SimTime::from_us(2), b)]);
        t.set_end_time(SimTime::from_ms(1));
        let text = write_trace(&t, &voc);
        let mut voc2 = Vocabulary::new();
        let t2 = read_trace(&text, &mut voc2).expect("parses");
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.end_time(), SimTime::from_ms(1));
        assert_eq!(voc2.resolve(t2.events()[0].name), "a");
        assert_eq!(voc2.resolve(t2.events()[1].name), "b");
        assert_eq!(voc2.direction(t2.events()[1].name), Direction::Output);
    }

    #[test]
    fn roundtrip_without_explicit_end() {
        let mut voc = Vocabulary::new();
        let a = voc.input("a");
        let t = Trace::from_pairs([(SimTime::from_ns(1), a)]);
        let text = write_trace(&t, &voc);
        assert!(!text.contains("end"), "no redundant end line: {text}");
        let mut voc2 = Vocabulary::new();
        let t2 = read_trace(&text, &mut voc2).expect("parses");
        assert_eq!(t2.end_time(), SimTime::from_ns(1));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let voc = Vocabulary::new();
        let t = Trace::new();
        let text = write_trace(&t, &voc);
        let mut voc2 = Vocabulary::new();
        let t2 = read_trace(&text, &mut voc2).expect("parses");
        assert!(t2.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut voc = Vocabulary::new();
        let err = read_trace("10ns in a\n5ns in b\n", &mut voc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("precedes"));

        let err = read_trace("10ns sideways a\n", &mut voc).unwrap_err();
        assert!(err.message.contains("unknown direction"));

        let err = read_trace("10ns in\n", &mut voc).unwrap_err();
        assert!(err.message.contains("missing event name"));

        let err = read_trace("banana in a\n", &mut voc).unwrap_err();
        assert_eq!(err.line, 1);

        let err = read_trace("10ns in a extra\n", &mut voc).unwrap_err();
        assert!(err.message.contains("trailing"));

        let err = read_trace("end\n", &mut voc).unwrap_err();
        assert!(err.message.contains("requires a time"));

        let err = read_trace("10ns in a\nend 5ns\n", &mut voc).unwrap_err();
        assert!(err.message.contains("precedes last event"));
    }

    #[test]
    fn display_of_error() {
        let err = TraceParseError {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "trace line 3: boom");
    }
}
