//! # lomon-sync — a miniature synchronous dataflow runtime
//!
//! The paper validates its monitor constructions by programming them in
//! **Lustre** and comparing against the intuitive semantics with automatic
//! testing tools (Section 6). This crate replays that methodology:
//!
//! * [`network`] — a small synchronous language runtime: boolean/integer
//!   signals, combinational operators and unit-delay registers, advancing
//!   in lockstep ticks;
//! * [`recognizer_net`] — the Fig. 5 elementary range recognizer written a
//!   *second* time as dataflow equations over that runtime.
//!
//! The crate's integration tests drive the network encoding and the
//! imperative `lomon_core` recognizer with identical input sequences and
//! require identical states and outputs at every tick — an independent
//! check of the most intricate piece of the reproduction.

pub mod network;
pub mod recognizer_net;

pub use network::{Network, NetworkBuilder, Signal, Value};
pub use recognizer_net::{ClassInput, NetOutput, NetState, RangeRecognizerNet};
